//! The tidy rules and the per-file checker.
//!
//! Rules are scoped by repo-relative path. The hot-path decode/navigation
//! files must stay panic-free (`no-panic`, `no-index`), the OSON/BSON wire
//! arithmetic must use checked conversions (`no-as-int`), metric names
//! must come from `fsdm_obs::catalog` (`metric-literal`), span names must
//! come from the catalog's `SPAN_*` constants (`span-name-from-catalog`),
//! diagnostic codes must come from the `fsdm_analyze::Code` registry and
//! never be spelled as string literals (`diag-code-registry`, which also
//! applies inside test code),
//! the executor
//! crates must stay free of single-thread interior mutability so
//! `Expr`/`Table`/`Database` remain `Send + Sync` (`no-interior-mut`:
//! `RefCell`/`Cell`/`Rc` in `crates/store/src` and `crates/sqljson/src`),
//! debugging scaffold must not ship anywhere (`no-debug`: `dbg!` and
//! `todo!` workspace-wide), `catch_unwind` is confined to the morsel
//! executor's panic boundary and the failpoint crate
//! (`panic-isolation`), and every file observes basic hygiene (`tab`,
//! `trailing-whitespace`, `todo`).
//!
//! A finding can be suppressed with an annotation on the same line or the
//! line above:
//!
//! ```text
//! // fsdm-tidy: allow(no-index) -- bounds established by the loop guard
//! ```
//!
//! Allows are budgeted (see [`ALLOW_BUDGET`]), forbidden outright in the
//! most safety-critical files, and an allow that suppresses nothing is
//! itself an error.

use crate::lexer::{Class, Scan};

/// Maximum number of allow annotations tolerated across the repo.
pub const ALLOW_BUDGET: usize = 10;

/// Files whose non-test code must be free of panicking constructs.
const HOT_PATH_FILES: &[&str] = &[
    "crates/oson/src/wire.rs",
    "crates/oson/src/doc.rs",
    "crates/oson/src/update.rs",
    "crates/bson/src/decode.rs",
    "crates/sqljson/src/engine.rs",
    "crates/sqljson/src/streaming.rs",
    "crates/sqljson/src/ops.rs",
];

/// Files where bare `as` integer casts are banned (offset/length
/// arithmetic must use `try_into` or the checked wire helpers).
const NO_AS_FILES: &[&str] = &[
    "crates/oson/src/wire.rs",
    "crates/oson/src/doc.rs",
    "crates/oson/src/update.rs",
    "crates/bson/src/decode.rs",
];

/// Files where allow annotations are forbidden entirely.
pub const NO_ALLOW_FILES: &[&str] = &["crates/oson/src/wire.rs", "crates/bson/src/decode.rs"];

/// The crate that owns the diagnostic-code registry
/// (`crates/analyze/src/diag.rs`). Everywhere else, `FA###`/`PK###`/`SN###`
/// codes must be referenced through `fsdm_analyze::Code`, never spelled
/// as string literals, so renumbering stays a one-file change.
const DIAG_REGISTRY_PREFIX: &str = "crates/analyze/";

/// Path prefixes where single-thread interior-mutability types are banned:
/// the morsel-driven executor shares `Expr`/`Table`/`Database` across
/// worker threads, so these crates must stay `Send + Sync`. Per-worker
/// mutable state belongs in `EvalScratch`, passed by `&mut`.
const NO_INTERIOR_MUT_PREFIXES: &[&str] = &["crates/store/src/", "crates/sqljson/src/"];

/// The one production panic boundary: `run_morsels` catches worker
/// panics, cancels the peers, and rethrows as a typed error. Everywhere
/// else (outside the failpoint crate, whose panic mode exists to test
/// that boundary) `catch_unwind` hides a bug (`panic-isolation`).
const PANIC_BOUNDARY_FILE: &str = "crates/store/src/parallel.rs";

/// One reported problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (stable, used in allow annotations).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// True when `--fix` can repair it mechanically.
    pub fixable: bool,
}

/// Keywords that may legitimately precede `[` without it being an index
/// expression (slice patterns, array types after `->`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "as", "move", "static", "const",
    "dyn", "impl", "for", "while", "loop", "break", "continue", "where", "pub", "fn", "type",
    "use", "mod", "enum", "struct", "trait", "union", "unsafe", "extern", "box", "await", "yield",
];

const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// An allow annotation parsed from a line comment.
struct Allow {
    line: usize,
    rule: String,
    used: bool,
}

/// Run every applicable rule over one scanned file. `rel` is the path
/// relative to the repo root, with forward slashes.
pub fn check_file(rel: &str, scan: &Scan) -> (Vec<Finding>, usize) {
    let hot = HOT_PATH_FILES.contains(&rel);
    let no_as = NO_AS_FILES.contains(&rel);
    let metrics = !rel.starts_with("crates/obs/");
    let diag_codes = !rel.starts_with(DIAG_REGISTRY_PREFIX);
    let no_int_mut = NO_INTERIOR_MUT_PREFIXES.iter().any(|p| rel.starts_with(p));
    let isolate = rel != PANIC_BOUNDARY_FILE && !rel.starts_with("crates/fault/");

    let mut raw: Vec<Finding> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    collect_allows(rel, scan, &mut allows, &mut raw);

    for line in 0..scan.lines.len() {
        hygiene(rel, scan, line, &mut raw);
        // runs before the in_test gate: string comparisons against
        // diagnostic ids live mostly in test code
        if diag_codes {
            diag_code_literal(rel, scan, line, &mut raw);
        }
        let skip_semantic = scan.in_test(line);
        if skip_semantic {
            continue;
        }
        let masked = scan.masked(line);
        no_debug(rel, hot, line, &masked, &mut raw);
        if hot {
            no_panic(rel, line, &masked, &mut raw);
            no_index(rel, line, &masked, &mut raw);
        }
        if no_as {
            no_as_int(rel, line, &masked, &mut raw);
        }
        if no_int_mut {
            no_interior_mut(rel, line, &masked, &mut raw);
        }
        if isolate {
            panic_isolation(rel, line, &masked, &mut raw);
        }
        if metrics {
            metric_literal(rel, scan, line, &masked, &mut raw);
            span_literal(rel, scan, line, &masked, &mut raw);
        }
    }
    todo_comments(rel, scan, &mut raw);

    // apply allow annotations: an allow on the finding's line or the line
    // directly above suppresses it (and is thereby "used")
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let suppressed = allows.iter_mut().any(|a| {
            let adjacent = a.line + 1 == f.line || a.line + 2 == f.line;
            if adjacent && a.rule == f.rule && f.rule != "bad-allow" {
                a.used = true;
                true
            } else {
                false
            }
        });
        if !suppressed {
            findings.push(f);
        }
    }
    let used = allows.iter().filter(|a| a.used).count();
    for a in &allows {
        if !a.used {
            findings.push(Finding {
                file: rel.to_string(),
                line: a.line + 1,
                rule: "unused-allow",
                message: format!("allow({}) suppresses nothing; remove it", a.rule),
                fixable: false,
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    (findings, used)
}

fn collect_allows(rel: &str, scan: &Scan, allows: &mut Vec<Allow>, out: &mut Vec<Finding>) {
    let forbidden = NO_ALLOW_FILES.contains(&rel);
    for (line, text) in &scan.comments {
        // doc comments (`///`, `//!`) may *mention* annotations as prose;
        // only plain `//` comments carry live ones
        if text.starts_with('/') || text.starts_with('!') {
            continue;
        }
        let Some(pos) = text.find("fsdm-tidy:") else { continue };
        let rest = text.get(pos + "fsdm-tidy:".len()..).unwrap_or("").trim_start();
        let parsed = rest.strip_prefix("allow(").and_then(|r| {
            let (rule, tail) = r.split_once(')')?;
            let reason = tail.trim_start().strip_prefix("--")?.trim();
            if rule.is_empty() || reason.is_empty() {
                None
            } else {
                Some(rule.to_string())
            }
        });
        match parsed {
            Some(rule) if forbidden => out.push(Finding {
                file: rel.to_string(),
                line: line + 1,
                rule: "allow-forbidden",
                message: format!("allow({rule}) is forbidden in {rel}; fix the code instead"),
                fixable: false,
            }),
            Some(rule) => allows.push(Allow { line: *line, rule, used: false }),
            None => out.push(Finding {
                file: rel.to_string(),
                line: line + 1,
                rule: "bad-allow",
                message: "malformed annotation; expected \
                          `fsdm-tidy: allow(<rule>) -- <reason>`"
                    .to_string(),
                fixable: false,
            }),
        }
    }
}

/// Identifiers in a masked line as `(start, end, word)` spans.
fn idents(masked: &str) -> Vec<(usize, usize, String)> {
    let chars: Vec<char> = masked.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let Some(&c) = chars.get(i) else { break };
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while chars.get(i).is_some_and(|&c| c.is_alphanumeric() || c == '_') {
                i += 1;
            }
            out.push((start, i, chars.get(start..i).unwrap_or(&[]).iter().collect()));
        } else {
            i += 1;
        }
    }
    out
}

fn next_non_ws(masked: &str, from: usize) -> Option<char> {
    masked.chars().skip(from).find(|c| !c.is_whitespace())
}

fn prev_non_ws(masked: &str, upto: usize) -> Option<char> {
    masked.chars().take(upto).filter(|c| !c.is_whitespace()).last()
}

fn no_panic(rel: &str, line: usize, masked: &str, out: &mut Vec<Finding>) {
    for (start, end, word) in idents(masked) {
        let finding = match word.as_str() {
            "unwrap" | "expect" => {
                prev_non_ws(masked, start) == Some('.') && next_non_ws(masked, end) == Some('(')
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                next_non_ws(masked, end) == Some('!')
            }
            _ => false,
        };
        if finding {
            out.push(Finding {
                file: rel.to_string(),
                line: line + 1,
                rule: "no-panic",
                message: format!(
                    "`{word}` can panic; hot-path decode code must return errors \
                     or use a total fallback"
                ),
                fixable: false,
            });
        }
    }
}

fn no_debug(rel: &str, hot: bool, line: usize, masked: &str, out: &mut Vec<Finding>) {
    for (_, end, word) in idents(masked) {
        let flagged = match word.as_str() {
            "dbg" => next_non_ws(masked, end) == Some('!'),
            // hot files already get the stricter `no-panic` report for `todo!`
            "todo" if !hot => next_non_ws(masked, end) == Some('!'),
            _ => false,
        };
        if flagged {
            out.push(Finding {
                file: rel.to_string(),
                line: line + 1,
                rule: "no-debug",
                message: format!("`{word}!` must not ship; remove the debugging scaffold"),
                fixable: false,
            });
        }
    }
}

fn no_index(rel: &str, line: usize, masked: &str, out: &mut Vec<Finding>) {
    let chars: Vec<char> = masked.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let Some(prev) = prev_non_ws(masked, i) else { continue };
        let is_index = if prev.is_alphanumeric() || prev == '_' {
            // walk back over the identifier and reject keywords
            let mut j = i;
            while j > 0 && chars.get(j - 1).is_some_and(char::is_ascii_whitespace) {
                j -= 1;
            }
            let end = j;
            while j > 0 && chars.get(j - 1).is_some_and(|&c| c.is_alphanumeric() || c == '_') {
                j -= 1;
            }
            let word: String = chars.get(j..end).unwrap_or(&[]).iter().collect();
            // `&'a [u8]`: a lifetime before `[` is a type, not an index
            let lifetime = j > 0 && chars.get(j - 1) == Some(&'\'');
            !lifetime && !NON_INDEX_KEYWORDS.contains(&word.as_str())
        } else {
            matches!(prev, ')' | ']' | '?')
        };
        if is_index {
            out.push(Finding {
                file: rel.to_string(),
                line: line + 1,
                rule: "no-index",
                message: "slice/array indexing can panic; use `.get()` / `.get_mut()` \
                          or a slice pattern"
                    .to_string(),
                fixable: false,
            });
        }
    }
}

fn panic_isolation(rel: &str, line: usize, masked: &str, out: &mut Vec<Finding>) {
    for (_, _, word) in idents(masked) {
        if word == "catch_unwind" {
            out.push(Finding {
                file: rel.to_string(),
                line: line + 1,
                rule: "panic-isolation",
                message: "`catch_unwind` outside the morsel executor's panic boundary \
                          swallows bugs; return a typed error, or let `run_morsels` \
                          isolate the panic"
                    .to_string(),
                fixable: false,
            });
        }
    }
}

fn no_as_int(rel: &str, line: usize, masked: &str, out: &mut Vec<Finding>) {
    let words = idents(masked);
    for (i, (_, _, word)) in words.iter().enumerate() {
        if word != "as" {
            continue;
        }
        if let Some((_, _, ty)) = words.get(i + 1) {
            if INT_TYPES.contains(&ty.as_str()) {
                out.push(Finding {
                    file: rel.to_string(),
                    line: line + 1,
                    rule: "no-as-int",
                    message: format!(
                        "bare `as {ty}` cast in offset/length arithmetic; use \
                         `try_into()`, `{ty}::from()`, or the checked wire helpers"
                    ),
                    fixable: false,
                });
            }
        }
    }
}

fn no_interior_mut(rel: &str, line: usize, masked: &str, out: &mut Vec<Finding>) {
    for (start, end, word) in idents(masked) {
        let flagged = match word.as_str() {
            "RefCell" | "UnsafeCell" | "Rc" => true,
            // the `std::cell` module path: catches `std::cell::Cell<_>`
            // etc. without flagging identifiers that merely *name* a cell
            // (the row-cell enum `table::Cell` is not interior mutability)
            "cell" => {
                prev_non_ws(masked, start) == Some(':') && next_non_ws(masked, end) == Some(':')
            }
            _ => false,
        };
        if flagged {
            out.push(Finding {
                file: rel.to_string(),
                line: line + 1,
                rule: "no-interior-mut",
                message: format!(
                    "`{word}` is single-thread interior mutability and breaks the \
                     `Send + Sync` executor invariant; keep per-worker state in \
                     `EvalScratch` (passed by `&mut`) or use `Arc`/atomics"
                ),
                fixable: false,
            });
        }
    }
}

fn metric_literal(rel: &str, scan: &Scan, line: usize, masked: &str, out: &mut Vec<Finding>) {
    for (_, end, word) in idents(masked) {
        if !matches!(word.as_str(), "counter" | "gauge" | "histogram") {
            continue;
        }
        // require `!` then `(` then a string literal as the first argument
        let mchars: Vec<char> = masked.chars().collect();
        let mut j = end;
        while mchars.get(j).is_some_and(|c| c.is_whitespace()) {
            j += 1;
        }
        if mchars.get(j) != Some(&'!') {
            continue;
        }
        j += 1;
        while mchars.get(j).is_some_and(|c| c.is_whitespace()) {
            j += 1;
        }
        if mchars.get(j) != Some(&'(') {
            continue;
        }
        j += 1;
        // the first significant column after the paren: skip code
        // whitespace, then see whether a string literal starts there
        let mut literal = false;
        while let (Some(&c), Some(&cls)) = (
            scan.lines.get(line).and_then(|l| l.get(j)),
            scan.classes.get(line).and_then(|l| l.get(j)),
        ) {
            if cls == Class::Code && c.is_whitespace() {
                j += 1;
                continue;
            }
            literal = matches!(cls, Class::StrDelim | Class::StrContent);
            break;
        }
        if literal {
            out.push(Finding {
                file: rel.to_string(),
                line: line + 1,
                rule: "metric-literal",
                message: format!(
                    "string-literal metric name at a `{word}!` call site; record through \
                     a `fsdm_obs::catalog` constant"
                ),
                fixable: false,
            });
        }
    }
}

/// Mirror of [`metric_literal`] for the trace layer: span names at
/// `span`/`span_args`/`span_with_parent` call sites must come from
/// `fsdm_obs::catalog` (the `SPAN_*` constants), never be string
/// literals. Spans are functions, not macros, so the shape is the
/// identifier followed directly by `(` and a string literal.
fn span_literal(rel: &str, scan: &Scan, line: usize, masked: &str, out: &mut Vec<Finding>) {
    for (_, end, word) in idents(masked) {
        if !matches!(word.as_str(), "span" | "span_args" | "span_with_parent") {
            continue;
        }
        let mchars: Vec<char> = masked.chars().collect();
        let mut j = end;
        while mchars.get(j).is_some_and(|c| c.is_whitespace()) {
            j += 1;
        }
        if mchars.get(j) != Some(&'(') {
            continue;
        }
        j += 1;
        let mut literal = false;
        while let (Some(&c), Some(&cls)) = (
            scan.lines.get(line).and_then(|l| l.get(j)),
            scan.classes.get(line).and_then(|l| l.get(j)),
        ) {
            if cls == Class::Code && c.is_whitespace() {
                j += 1;
                continue;
            }
            literal = matches!(cls, Class::StrDelim | Class::StrContent);
            break;
        }
        if literal {
            out.push(Finding {
                file: rel.to_string(),
                line: line + 1,
                rule: "span-name-from-catalog",
                message: format!(
                    "string-literal span name at a `{word}` call site; trace through a \
                     `fsdm_obs::catalog::SPAN_*` constant"
                ),
                fixable: false,
            });
        }
    }
}

/// `diag-code-registry`: diagnostic ids (`FA###`/`PK###`/`SN###`) may only be
/// spelled out inside the registry crate (`crates/analyze/`, where
/// `diag.rs` defines `Code`). Everywhere else — including test modules,
/// where assertions against rendered output tend to accumulate — codes
/// must be referenced through `fsdm_analyze::Code`, so renumbering or
/// retiring a code stays a one-file change. Unlike the masked semantic
/// rules this one inspects string *content*, so it reads the raw line
/// and fires only where the scanner classified `StrContent`.
fn diag_code_literal(rel: &str, scan: &Scan, line: usize, out: &mut Vec<Finding>) {
    let (Some(chars), Some(classes)) = (scan.lines.get(line), scan.classes.get(line)) else {
        return;
    };
    for i in 0..chars.len() {
        let prefix = matches!(
            (chars.get(i), chars.get(i + 1)),
            (Some(&'F'), Some(&'A')) | (Some(&'P'), Some(&'K')) | (Some(&'S'), Some(&'N'))
        );
        let digits = (2..5).all(|k| chars.get(i + k).is_some_and(char::is_ascii_digit));
        let in_string = (0..5).all(|k| classes.get(i + k) == Some(&Class::StrContent));
        if !(prefix && digits && in_string) {
            continue;
        }
        // word boundaries: not the tail of a longer identifier, and not
        // followed by more digits (`FA0001` is prose, not a code)
        let joined_before =
            i > 0 && chars.get(i - 1).is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_');
        let joined_after = chars.get(i + 5).is_some_and(char::is_ascii_digit);
        if joined_before || joined_after {
            continue;
        }
        let code: String = chars.iter().skip(i).take(5).collect();
        out.push(Finding {
            file: rel.to_string(),
            line: line + 1,
            rule: "diag-code-registry",
            message: format!(
                "diagnostic code \"{code}\" spelled as a string literal; reference it \
                 through `fsdm_analyze::Code` (compare codes or build expected text \
                 from `Code::<variant>.id()`)"
            ),
            fixable: false,
        });
    }
}

fn hygiene(rel: &str, scan: &Scan, line: usize, out: &mut Vec<Finding>) {
    let (Some(chars), Some(classes)) = (scan.lines.get(line), scan.classes.get(line)) else {
        return;
    };
    if chars.iter().zip(classes).any(|(&c, &cls)| c == '\t' && cls != Class::StrContent) {
        out.push(Finding {
            file: rel.to_string(),
            line: line + 1,
            rule: "tab",
            message: "tab character outside a string literal; use spaces".to_string(),
            fixable: true,
        });
    }
    let trailing = chars
        .iter()
        .zip(classes)
        .rev()
        .take_while(|(&c, _)| c == ' ' || c == '\t')
        .collect::<Vec<_>>();
    if !trailing.is_empty() && trailing.iter().all(|(_, &cls)| cls != Class::StrContent) {
        out.push(Finding {
            file: rel.to_string(),
            line: line + 1,
            rule: "trailing-whitespace",
            message: "trailing whitespace".to_string(),
            fixable: true,
        });
    }
}

fn todo_comments(rel: &str, scan: &Scan, out: &mut Vec<Finding>) {
    for (line, text) in &scan.comments {
        for marker in ["TODO", "FIXME"] {
            let Some(pos) = text.find(marker) else { continue };
            let after = text.get(pos + marker.len()..).unwrap_or("");
            let has_issue = after
                .strip_prefix("(#")
                .is_some_and(|r| r.chars().next().is_some_and(|c| c.is_ascii_digit()));
            if !has_issue {
                out.push(Finding {
                    file: rel.to_string(),
                    line: line + 1,
                    rule: "todo",
                    message: format!("{marker} without an issue reference; write {marker}(#N)"),
                    fixable: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        check_file(rel, &scan(src)).0
    }

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    const HOT: &str = "crates/oson/src/doc.rs";
    const COLD: &str = "crates/workloads/src/lib.rs";

    #[test]
    fn flags_unwrap_expect_panic_in_hot_paths() {
        let src = "fn f(v: Option<u8>) -> u8 {\n    let a = v.unwrap();\n    \
                   let b = v.expect(\"x\");\n    panic!(\"no\");\n    unreachable!()\n}\n";
        assert_eq!(rules(&run(HOT, src)), vec!["no-panic"; 4]);
        assert!(run(COLD, src).is_empty(), "cold files are out of scope");
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(v: Option<u8>) -> u8 {\n    v.unwrap_or(0)\n}\n";
        assert!(run(HOT, src).is_empty());
    }

    #[test]
    fn prose_mentions_do_not_fire() {
        let src = "// calling unwrap() here would panic!\nfn f() -> &'static str {\n    \
                   \"never panic!(now)\"\n}\n";
        assert!(run(HOT, src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_semantic_rules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t(v: Option<u8>) {\n        \
                   v.unwrap();\n    }\n}\n";
        assert!(run(HOT, src).is_empty());
    }

    #[test]
    fn flags_indexing_but_not_patterns() {
        let src = "fn f(v: &[u8], i: usize) -> u8 {\n    let [a, ..] = v else { return 0 };\n    \
                   let _ = *a;\n    v[i]\n}\n";
        let f = run(HOT, src);
        assert_eq!(rules(&f), vec!["no-index"]);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn macro_and_attribute_brackets_are_fine() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() -> Vec<u8> {\n    vec![1, 2]\n}\n";
        assert!(run(HOT, src).is_empty());
    }

    #[test]
    fn catch_unwind_is_confined_to_the_panic_boundary() {
        let src = "fn f() {\n    let _ = std::panic::catch_unwind(|| 1);\n}\n";
        assert_eq!(rules(&run("crates/store/src/database.rs", src)), vec!["panic-isolation"]);
        assert!(run(PANIC_BOUNDARY_FILE, src).is_empty(), "the executor owns the boundary");
        assert!(run("crates/fault/src/lib.rs", src).is_empty(), "the failpoint crate is exempt");
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        \
                        let _ = std::panic::catch_unwind(|| 1);\n    }\n}\n";
        assert!(run("crates/obs/src/trace.rs", test_src).is_empty(), "test code is exempt");
    }

    #[test]
    fn flags_as_int_casts_in_wire_files() {
        let src = "fn f(x: u64) -> usize {\n    x as usize\n}\n";
        assert_eq!(rules(&run("crates/oson/src/wire.rs", src)), vec!["no-as-int"]);
        assert!(run("crates/sqljson/src/engine.rs", src).is_empty(), "engine allows casts");
    }

    #[test]
    fn as_non_int_is_fine() {
        let src = "fn f(x: u32) -> f64 {\n    f64::from(x) as f64\n}\n";
        assert!(run("crates/oson/src/wire.rs", src).is_empty());
    }

    #[test]
    fn flags_interior_mutability_in_executor_crates() {
        let src = "use std::cell::RefCell;\nfn f() {\n    let _ = std::rc::Rc::new(1);\n}\n";
        let f = run("crates/store/src/expr.rs", src);
        assert_eq!(rules(&f), vec!["no-interior-mut"; 3], "{f:?}");
        assert!(run("crates/sqljson/src/path.rs", src).iter().any(|x| x.rule == "no-interior-mut"));
        assert!(run(COLD, src).is_empty(), "other crates are out of scope");
    }

    #[test]
    fn row_cell_enum_is_not_interior_mutability() {
        let src = "enum Cell {\n    D(u8),\n}\nfn f(cell: &Cell) -> &Cell {\n    cell\n}\n";
        assert!(run("crates/store/src/table.rs", src).is_empty());
    }

    #[test]
    fn interior_mut_allow_escape_still_works() {
        let src = "fn f() {\n    \
                   // fsdm-tidy: allow(no-interior-mut) -- single-threaded builder\n    \
                   let c = std::cell::Cell::new(0u8);\n    c.set(1);\n}\n";
        let (f, used) = check_file("crates/store/src/table.rs", &scan(src));
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn flags_metric_literals_outside_obs() {
        let src = "fn f() {\n    fsdm_obs::counter!(\"a.b.c\").inc();\n}\n";
        assert_eq!(rules(&run(COLD, src)), vec!["metric-literal"]);
        assert!(run("crates/obs/src/lib.rs", src).is_empty(), "obs itself is exempt");
        let ok = "fn f() {\n    fsdm_obs::counter!(fsdm_obs::catalog::X).inc();\n}\n";
        assert!(run(COLD, ok).is_empty());
    }

    #[test]
    fn flags_span_literals_outside_obs() {
        let src = "fn f() {\n    let _g = fsdm_obs::trace::span(\"a.b\");\n}\n";
        assert_eq!(rules(&run(COLD, src)), vec!["span-name-from-catalog"]);
        assert!(run("crates/obs/src/trace.rs", src).is_empty(), "obs itself is exempt");
        let with_parent =
            "fn f(p: u64) {\n    let _g = fsdm_obs::trace::span_with_parent(\"a.b\", p);\n}\n";
        assert_eq!(rules(&run(COLD, with_parent)), vec!["span-name-from-catalog"]);
        let ok = "fn f() {\n    let _g = fsdm_obs::trace::span(fsdm_obs::catalog::SPAN_X);\n}\n";
        assert!(run(COLD, ok).is_empty());
        let unrelated = "fn f(s: &Layout) {\n    s.span(\"names are fine on other types\")\n}\n";
        assert_eq!(
            rules(&run(COLD, unrelated)),
            vec!["span-name-from-catalog"],
            "method calls match too — rename unrelated methods rather than weakening the rule"
        );
    }

    #[test]
    fn flags_diag_code_literals_outside_the_registry() {
        // the test source is assembled from halves so fsdm-tidy's scan of
        // this very file never sees a contiguous code literal
        let src = format!("fn f() -> &'static str {{\n    \"{}{}\"\n}}\n", "PK", "001");
        assert_eq!(rules(&run(COLD, &src)), vec!["diag-code-registry"]);
        assert!(
            run("crates/analyze/src/diag.rs", &src).is_empty(),
            "the registry crate itself is exempt"
        );
        let sentinel = format!("fn f() -> &'static str {{\n    \"{}{}\"\n}}\n", "SN", "004");
        assert_eq!(
            rules(&run(COLD, &sentinel)),
            vec!["diag-code-registry"],
            "the sentinel series is covered too"
        );
        let in_test = format!(
            "fn f() {{}}\n#[cfg(test)]\nmod tests {{\n    fn t(id: &str) -> bool {{\n        \
             id == \"{}{}\"\n    }}\n}}\n",
            "FA", "001"
        );
        assert_eq!(
            rules(&run(COLD, &in_test)),
            vec!["diag-code-registry"],
            "unlike other semantic rules, this one applies inside test modules"
        );
    }

    #[test]
    fn diag_code_prose_and_near_misses_do_not_fire() {
        let comment = format!("// {}{} is explained here\nfn f() {{}}\n", "PK", "003");
        assert!(run(COLD, &comment).is_empty(), "comments are prose");
        let longer = format!("fn f() -> &'static str {{\n    \"{}{}1\"\n}}\n", "FA", "000");
        assert!(run(COLD, &longer).is_empty(), "four digits is not a code");
        let ident = format!("fn f() -> &'static str {{\n    \"X{}{}\"\n}}\n", "PK", "001");
        assert!(run(COLD, &ident).is_empty(), "identifier tails are not codes");
        let enum_ref = "fn f(c: fsdm_analyze::Code) -> bool {\n    \
                        c == fsdm_analyze::Code::UnknownColumn\n}\n";
        assert!(run(COLD, enum_ref).is_empty(), "enum references are the fix");
    }

    #[test]
    fn flags_dbg_and_todo_everywhere() {
        let src = "fn f(x: u8) -> u8 {\n    dbg!(x);\n    todo!()\n}\n";
        assert_eq!(rules(&run(COLD, src)), vec!["no-debug", "no-debug"]);
        // in hot files `todo!` is already a no-panic finding; only `dbg!`
        // surfaces as no-debug, so nothing is double-reported
        let hot = run(HOT, src);
        assert_eq!(rules(&hot), vec!["no-debug", "no-panic"]);
        assert_eq!(hot[0].line, 2, "the dbg! call: {hot:?}");
    }

    #[test]
    fn debug_prose_and_tests_do_not_fire() {
        let prose = "// a dbg! here would be noisy, todo! would not compile\nfn f() {}\n";
        assert!(run(COLD, prose).is_empty());
        let test = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        \
                    dbg!(1);\n    }\n}\n";
        assert!(run(COLD, test).is_empty(), "test code is exempt");
        let names = "fn dbg_mode() -> bool {\n    todo_list()\n}\nfn todo_list() -> bool \
                     {\n    false\n}\n";
        assert!(run(COLD, names).is_empty(), "identifiers without `!` are fine");
    }

    #[test]
    fn hygiene_rules() {
        let src = "fn f() {\n\tlet y = 0;\n    let x = 1;  \n    let s = \"a b  \";\n}\n";
        let f = run(COLD, src);
        assert_eq!(rules(&f), vec!["tab", "trailing-whitespace"]);
        assert!(f.iter().all(|x| x.fixable));
    }

    #[test]
    fn todo_requires_issue_ref() {
        let src = "// TODO: someday\n// TODO(#42): tracked\nfn f() {}\n";
        let f = run(COLD, src);
        assert_eq!(rules(&f), vec!["todo"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn allow_suppresses_and_is_counted() {
        let src = "fn f(v: &[u8]) -> u8 {\n    \
                   // fsdm-tidy: allow(no-index) -- length checked by caller\n    v[0]\n}\n";
        let (f, used) = check_file(HOT, &scan(src));
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn unused_allow_is_an_error() {
        let src = "// fsdm-tidy: allow(no-panic) -- stale\nfn f() {}\n";
        assert_eq!(rules(&run(HOT, src)), vec!["unused-allow"]);
    }

    #[test]
    fn malformed_allow_is_an_error() {
        let src = "// fsdm-tidy: allow(no-panic)\nfn f() {}\n";
        assert_eq!(rules(&run(HOT, src)), vec!["bad-allow"]);
    }

    #[test]
    fn allows_are_forbidden_in_wire_and_bson_decode() {
        let src = "fn f(v: &[u8]) -> u8 {\n    \
                   // fsdm-tidy: allow(no-index) -- nope\n    v[0]\n}\n";
        let f = run("crates/oson/src/wire.rs", src);
        assert!(f.iter().any(|x| x.rule == "allow-forbidden"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "no-index"), "the finding still fires: {f:?}");
    }
}

//! Corpus + database setup for the experiments.

use fsdm_json::JsonValue;
use fsdm_sql::Session;
use fsdm_sqljson::json_table::{ColumnDef, JsonTableDef, NestedDef};
use fsdm_sqljson::{parse_path, Datum, SqlType};
use fsdm_store::table::InsertValue;
use fsdm_store::{
    ColType, ColumnSpec, ConstraintMode, Expr, JsonStorage, Query, Table, TableSchema,
};
use fsdm_workloads::{nobench, olap, rng_for};

/// The four §6.3 storage methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMethod {
    /// JSON text in a varchar column.
    Json,
    /// BSON in a raw column.
    Bson,
    /// OSON in a raw column.
    Oson,
    /// Relational decomposition into master + detail tables.
    Rel,
}

impl StorageMethod {
    /// All four, in Figure 3/4 order.
    pub const ALL: [StorageMethod; 4] =
        [StorageMethod::Json, StorageMethod::Bson, StorageMethod::Oson, StorageMethod::Rel];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            StorageMethod::Json => "JSON",
            StorageMethod::Bson => "BSON",
            StorageMethod::Oson => "OSON",
            StorageMethod::Rel => "REL",
        }
    }
}

/// The purchaseOrder master/detail JSON_TABLE definition used by the
/// generated views (shared by all three self-contained storages).
pub fn po_dmdv_def() -> JsonTableDef {
    let p = |s: &str| parse_path(s).unwrap();
    JsonTableDef {
        row_path: p("$.purchaseOrder"),
        columns: vec![
            ColumnDef::value("reference", SqlType::Varchar2(32), p("$.reference")),
            ColumnDef::value("requestor", SqlType::Varchar2(32), p("$.requestor")),
            ColumnDef::value("costcenter", SqlType::Varchar2(8), p("$.costcenter")),
            ColumnDef::value("instructions", SqlType::Varchar2(128), p("$.instructions")),
        ],
        nested: vec![NestedDef {
            path: p("$.items[*]"),
            columns: vec![
                ColumnDef::value("itemno", SqlType::Number, p("$.itemno")),
                ColumnDef::value("partno", SqlType::Varchar2(16), p("$.partno")),
                ColumnDef::value("description", SqlType::Varchar2(64), p("$.description")),
                ColumnDef::value("quantity", SqlType::Number, p("$.quantity")),
                ColumnDef::value("unitprice", SqlType::Number, p("$.unitprice")),
            ],
            nested: vec![],
        }],
    }
}

/// Build the §6.3 database for one storage method: the corpus loaded into
/// the physical layout plus the `po_mv` and `po_item_dmdv` views over it.
pub fn olap_db(method: StorageMethod, n: usize) -> Session {
    let mut rng = rng_for("olap-corpus", 7);
    let docs = olap::corpus(&mut rng, n);
    let mut session = Session::new();
    match method {
        StorageMethod::Rel => setup_rel(&mut session, &docs),
        _ => {
            let storage = match method {
                StorageMethod::Json => JsonStorage::Text,
                StorageMethod::Bson => JsonStorage::Bson,
                StorageMethod::Oson => JsonStorage::Oson,
                StorageMethod::Rel => unreachable!(),
            };
            let mut t = Table::new(TableSchema::new(
                "po",
                vec![
                    ColumnSpec::new("did", ColType::Number),
                    ColumnSpec::json("jdoc", storage, ConstraintMode::IsJson),
                ],
            ));
            for (i, d) in docs.iter().enumerate() {
                t.insert(vec![(i as i64).into(), InsertValue::Json(fsdm_json::to_string(d))])
                    .unwrap();
            }
            session.db.add_table(t);
            register_json_views(&mut session);
        }
    }
    session
}

/// The same deterministic corpus the databases were loaded with.
pub fn olap_corpus(n: usize) -> Vec<JsonValue> {
    let mut rng = rng_for("olap-corpus", 7);
    olap::corpus(&mut rng, n)
}

/// The Table 13 query set bound to this corpus.
pub fn olap_queries(n: usize) -> Vec<olap::OlapQuery> {
    let docs = olap_corpus(n);
    let mut rng = rng_for("olap-queries", 11);
    olap::queries(&mut rng, &docs)
}

/// Convert an OLAP bind to a datum (numeric if it parses as a number).
pub fn bind_datum(s: &str) -> Datum {
    match fsdm_json::JsonNumber::from_literal(s) {
        Ok(n) => Datum::Num(n),
        Err(_) => Datum::Str(s.to_string()),
    }
}

fn register_json_views(session: &mut Session) {
    let p = |s: &str| parse_path(s).unwrap();
    // po_mv: singleton scalars via JSON_VALUE
    let mv = Query::Project {
        input: Box::new(Query::scan("po")),
        exprs: vec![
            ("did".to_string(), Expr::Col(0)),
            (
                "reference".to_string(),
                Expr::json_value(1, p("$.purchaseOrder.reference"), SqlType::Varchar2(32)),
            ),
            (
                "requestor".to_string(),
                Expr::json_value(1, p("$.purchaseOrder.requestor"), SqlType::Varchar2(32)),
            ),
            (
                "costcenter".to_string(),
                Expr::json_value(1, p("$.purchaseOrder.costcenter"), SqlType::Varchar2(8)),
            ),
            (
                "podate".to_string(),
                Expr::json_value(1, p("$.purchaseOrder.podate"), SqlType::Varchar2(16)),
            ),
        ],
    };
    session.db.create_view("po_mv", mv);
    // po_item_dmdv: master repeated per detail via JSON_TABLE
    let def = po_dmdv_def();
    let names = def.column_names();
    let jt = Query::JsonTable { input: Box::new(Query::scan("po")), json_col: 1, def };
    // hide the raw jdoc column: project did + JSON_TABLE outputs
    let mut exprs = vec![("did".to_string(), Expr::Col(0))];
    for (i, n) in names.iter().enumerate() {
        exprs.push((n.clone(), Expr::Col(2 + i)));
    }
    session.db.create_view("po_item_dmdv", Query::Project { input: Box::new(jt), exprs });
}

/// REL storage: shred into purchase_master_tab + lineitem_detail_tab with
/// key indexes, and define the views as projections / a hash join.
fn setup_rel(session: &mut Session, docs: &[JsonValue]) {
    let mut master = Table::new(TableSchema::new(
        "purchase_master_tab",
        vec![
            ColumnSpec::new("did", ColType::Number),
            ColumnSpec::new("reference", ColType::Varchar2(32)),
            ColumnSpec::new("requestor", ColType::Varchar2(32)),
            ColumnSpec::new("costcenter", ColType::Varchar2(8)),
            ColumnSpec::new("podate", ColType::Varchar2(16)),
            ColumnSpec::new("instructions", ColType::Varchar2(128)),
        ],
    ));
    let mut detail = Table::new(TableSchema::new(
        "lineitem_detail_tab",
        vec![
            ColumnSpec::new("did", ColType::Number),
            ColumnSpec::new("itemno", ColType::Number),
            ColumnSpec::new("partno", ColType::Varchar2(16)),
            ColumnSpec::new("description", ColType::Varchar2(64)),
            ColumnSpec::new("quantity", ColType::Number),
            ColumnSpec::new("unitprice", ColType::Number),
        ],
    ));
    let s = |v: Option<&JsonValue>| -> InsertValue {
        InsertValue::Datum(match v {
            Some(JsonValue::String(x)) => Datum::Str(x.clone()),
            Some(JsonValue::Number(n)) => Datum::Num(*n),
            _ => Datum::Null,
        })
    };
    for (i, d) in docs.iter().enumerate() {
        let po = d.get("purchaseOrder").unwrap();
        master
            .insert(vec![
                (i as i64).into(),
                s(po.get("reference")),
                s(po.get("requestor")),
                s(po.get("costcenter")),
                s(po.get("podate")),
                s(po.get("instructions")),
            ])
            .unwrap();
        if let Some(items) = po.get("items").and_then(|x| x.as_array()) {
            for it in items {
                detail
                    .insert(vec![
                        (i as i64).into(),
                        s(it.get("itemno")),
                        s(it.get("partno")),
                        s(it.get("description")),
                        s(it.get("quantity")),
                        s(it.get("unitprice")),
                    ])
                    .unwrap();
            }
        }
    }
    master.create_key_index("did").unwrap();
    detail.create_key_index("did").unwrap();
    session.db.add_table(master);
    session.db.add_table(detail);
    // po_mv over the master table
    let mv = Query::Project {
        input: Box::new(Query::scan("purchase_master_tab")),
        exprs: ["did", "reference", "requestor", "costcenter", "podate"]
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), Expr::Col(i)))
            .collect(),
    };
    session.db.create_view("po_mv", mv);
    // po_item_dmdv = master ⋈ detail with the same output columns as the
    // JSON views (master fields repeated per detail row)
    let join = Query::HashJoin {
        left: Box::new(Query::scan("purchase_master_tab")),
        right: Box::new(Query::scan("lineitem_detail_tab")),
        left_key: 0,
        right_key: 0,
    };
    let exprs = vec![
        ("did".to_string(), Expr::Col(0)),
        ("reference".to_string(), Expr::Col(1)),
        ("requestor".to_string(), Expr::Col(2)),
        ("costcenter".to_string(), Expr::Col(3)),
        ("instructions".to_string(), Expr::Col(5)),
        ("itemno".to_string(), Expr::Col(7)),
        ("partno".to_string(), Expr::Col(8)),
        ("description".to_string(), Expr::Col(9)),
        ("quantity".to_string(), Expr::Col(10)),
        ("unitprice".to_string(), Expr::Col(11)),
    ];
    session.db.create_view("po_item_dmdv", Query::Project { input: Box::new(join), exprs });
}

/// Total stored bytes for a storage method's database (Figure 4).
pub fn storage_size(session: &Session, method: StorageMethod) -> usize {
    match method {
        StorageMethod::Rel => {
            session.db.table("purchase_master_tab").map(|t| t.storage_size()).unwrap_or(0)
                + session.db.table("lineitem_detail_tab").map(|t| t.storage_size()).unwrap_or(0)
        }
        _ => session.db.table("po").map(|t| t.storage_size()).unwrap_or(0),
    }
}

/// Build the NOBENCH database: text storage (the Fig 5 setup stores text
/// on disk), IS JSON, no index.
pub fn nobench_db(n: usize) -> Session {
    let mut session = Session::new();
    let mut t = Table::new(TableSchema::new(
        "nobench",
        vec![
            ColumnSpec::new("did", ColType::Number),
            ColumnSpec::json("jdoc", JsonStorage::Text, ConstraintMode::IsJson),
        ],
    ));
    let mut rng = rng_for("nobench-corpus", 5);
    for i in 0..n {
        let d = nobench::doc(&mut rng, i);
        t.insert(vec![(i as i64).into(), InsertValue::Json(fsdm_json::to_string(&d))]).unwrap();
    }
    session.db.add_table(t);
    session
}

/// The NOBENCH database with DataGuide maintenance on. The Figure 5
/// benchmark table deliberately skips the guide; the lint gate needs it
/// to resolve every query path against the observed corpus.
pub fn nobench_guided_db(n: usize) -> Session {
    let mut session = Session::new();
    let mut t = Table::new(TableSchema::new(
        "nobench",
        vec![
            ColumnSpec::new("did", ColType::Number),
            ColumnSpec::json("jdoc", JsonStorage::Text, ConstraintMode::IsJsonWithDataGuide),
        ],
    ));
    let mut rng = rng_for("nobench-corpus", 5);
    for i in 0..n {
        let d = nobench::doc(&mut rng, i);
        t.insert(vec![(i as i64).into(), InsertValue::Json(fsdm_json::to_string(&d))]).unwrap();
    }
    session.db.add_table(t);
    session
}

/// The §6.3 OSON database with DataGuide maintenance on, plus the same
/// `po_mv` / `po_item_dmdv` views `olap_db` registers. Used by the lint
/// gate, which checks the view-definition paths against the guide.
pub fn olap_guided_db(n: usize) -> Session {
    let mut rng = rng_for("olap-corpus", 7);
    let docs = olap::corpus(&mut rng, n);
    let mut session = Session::new();
    let mut t = Table::new(TableSchema::new(
        "po",
        vec![
            ColumnSpec::new("did", ColType::Number),
            ColumnSpec::json("jdoc", JsonStorage::Oson, ConstraintMode::IsJsonWithDataGuide),
        ],
    ));
    for (i, d) in docs.iter().enumerate() {
        t.insert(vec![(i as i64).into(), InsertValue::Json(fsdm_json::to_string(d))]).unwrap();
    }
    session.db.add_table(t);
    register_json_views(&mut session);
    session
}

/// Register the three Figure 6 virtual columns (`$.str1`, `$.num`,
/// `$.dyn1`) on the NOBENCH table.
pub fn add_nobench_vcs(session: &mut Session) {
    let p = |s: &str| parse_path(s).unwrap();
    let t = session.db.table_mut("nobench").unwrap();
    if t.scan_col_index("nb$str1").is_none() {
        t.add_virtual_column("nb$str1", Expr::json_value(1, p("$.str1"), SqlType::Varchar2(32)));
        t.add_virtual_column("nb$num", Expr::json_value(1, p("$.num"), SqlType::Number));
        t.add_virtual_column("nb$dyn1", Expr::json_value(1, p("$.dyn1"), SqlType::Number));
    }
}

/// Register and populate virtual columns whose defining expressions match
/// the planner's lowering of NOBENCH Q1–Q3 **exactly** (default
/// `RETURNING` type included), so the optimizer's IMC substitution pass
/// rewrites those queries onto column vectors and the executor runs them
/// on the columnar pipeline.
pub fn add_nobench_columnar_vcs(session: &mut Session) {
    let p = |s: &str| parse_path(s).unwrap();
    let t = session.db.table_mut("nobench").unwrap();
    if t.scan_col_index("nbq$str1").is_none() {
        // the planner's default RETURNING is Varchar2(4000); the VC
        // definitions must match its Debug rendering verbatim or the
        // substitution pass won't recognize them
        let vc = SqlType::Varchar2(4000);
        t.add_virtual_column("nbq$str1", Expr::json_value(1, p("$.str1"), vc));
        t.add_virtual_column("nbq$num", Expr::json_value(1, p("$.num"), SqlType::Number));
        t.add_virtual_column("nbq$nstr", Expr::json_value(1, p("$.nested_obj.str"), vc));
        t.add_virtual_column(
            "nbq$nnum",
            Expr::json_value(1, p("$.nested_obj.num"), SqlType::Number),
        );
        t.add_virtual_column("nbq$s110", Expr::json_value(1, p("$.sparse_110"), vc));
        t.add_virtual_column("nbq$s119", Expr::json_value(1, p("$.sparse_119"), vc));
        t.add_virtual_column("nbq$x110", Expr::json_exists(1, p("$.sparse_110")));
    }
    t.populate_vc_imc(&[
        "nbq$str1", "nbq$num", "nbq$nstr", "nbq$nnum", "nbq$s110", "nbq$s119", "nbq$x110",
    ])
    .unwrap();
}

/// A bind value for NOBENCH Q5: the str1 of a mid-corpus document.
pub fn nobench_q5_bind(n: usize) -> Datum {
    let mut rng = rng_for("nobench-corpus", 5);
    let mut value = Datum::Null;
    for i in 0..n {
        let d = nobench::doc(&mut rng, i);
        if i == n / 2 {
            value = Datum::Str(d.get("str1").unwrap().as_str().unwrap().to_string());
        }
    }
    value
}

/// NOBENCH Q11 as a plan (json_value-keyed self equi-join), per mode:
/// `vc = true` joins on the materialized virtual columns instead.
pub fn nobench_q11_plan(n: usize, vc: bool) -> Query {
    let p = |s: &str| parse_path(s).unwrap();
    let lo = (n / 2) as i64;
    let hi = lo + (n / 1000 + 2) as i64;
    let (astr, anum, bstr): (Expr, Expr, Expr) = if vc {
        // scan columns: did, jdoc, nb$str1, nb$num, nb$dyn1
        (
            Expr::json_value(1, p("$.nested_obj.str"), SqlType::Varchar2(32)),
            Expr::Col(3),
            Expr::Col(2),
        )
    } else {
        (
            Expr::json_value(1, p("$.nested_obj.str"), SqlType::Varchar2(32)),
            Expr::json_value(1, p("$.num"), SqlType::Number),
            Expr::json_value(1, p("$.str1"), SqlType::Varchar2(32)),
        )
    };
    // filter in the scan, BEFORE computing the join key: under VC-IMC the
    // range predicate runs vectorized over the nb$num column and the
    // (expensive) nested_obj.str extraction touches only survivors
    let range = Expr::And(
        Box::new(Expr::cmp(anum.clone(), fsdm_store::CmpOp::Ge, Expr::Lit(Datum::from(lo)))),
        Box::new(Expr::cmp(anum.clone(), fsdm_store::CmpOp::Le, Expr::Lit(Datum::from(hi)))),
    );
    let left = Query::Project {
        input: Box::new(Query::scan_where("nobench", range)),
        exprs: vec![("astr".to_string(), astr), ("anum".to_string(), anum)],
    };
    let right = Query::Project {
        input: Box::new(Query::scan("nobench")),
        exprs: vec![("bstr".to_string(), bstr)],
    };
    Query::GroupBy {
        input: Box::new(Query::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            left_key: 0,
            right_key: 0,
        }),
        keys: vec![],
        aggs: vec![fsdm_store::query::AggSpec::count_star("n")],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn olap_dbs_agree_across_storages() {
        let n = 200;
        let queries = olap_queries(n);
        let mut baseline: Option<Vec<usize>> = None;
        for method in StorageMethod::ALL {
            let mut s = olap_db(method, n);
            let counts: Vec<usize> = queries
                .iter()
                .map(|q| {
                    let binds: Vec<Datum> = q.binds.iter().map(|b| bind_datum(b)).collect();
                    s.execute_with(&q.sql, &binds).unwrap().rows.len()
                })
                .collect();
            match &baseline {
                None => baseline = Some(counts),
                Some(b) => {
                    assert_eq!(&counts, b, "{} row counts differ", method.label())
                }
            }
        }
    }

    #[test]
    fn rel_views_have_same_columns_as_json_views() {
        let a = olap_db(StorageMethod::Oson, 20);
        let b = olap_db(StorageMethod::Rel, 20);
        let qa = a.db.plan_columns(a.db.view("po_item_dmdv").unwrap()).unwrap();
        let qb = b.db.plan_columns(b.db.view("po_item_dmdv").unwrap()).unwrap();
        assert_eq!(qa, qb);
    }

    #[test]
    fn nobench_queries_run_in_all_modes() {
        let n = 500;
        let mut s = nobench_db(n);
        // text mode
        let mut results_text = Vec::new();
        for q in 1..=10 {
            let sql = fsdm_workloads::nobench::query_sql(q, n);
            let binds = if q == 5 { vec![nobench_q5_bind(n)] } else { vec![] };
            results_text.push(s.execute_with(&sql, &binds).unwrap().rows.len());
        }
        let q11_text = s.db.execute(&nobench_q11_plan(n, false)).unwrap();
        // oson-imc mode: identical results
        s.db.table_mut("nobench").unwrap().populate_oson_imc().unwrap();
        for q in 1..=10 {
            let sql = fsdm_workloads::nobench::query_sql(q, n);
            let binds = if q == 5 { vec![nobench_q5_bind(n)] } else { vec![] };
            assert_eq!(
                s.execute_with(&sql, &binds).unwrap().rows.len(),
                results_text[q - 1],
                "Q{q} differs under OSON-IMC"
            );
        }
        assert_eq!(s.db.execute(&nobench_q11_plan(n, false)).unwrap(), q11_text);
        // vc-imc mode for the Fig 6 queries
        add_nobench_vcs(&mut s);
        s.db.table_mut("nobench")
            .unwrap()
            .populate_vc_imc(&["nb$str1", "nb$num", "nb$dyn1"])
            .unwrap();
        let q6_vc = s
            .execute(&format!(
                "select \"nb$num\" from nobench where \"nb$num\" between {} and {}",
                n / 2,
                n / 2 + n / 10
            ))
            .unwrap();
        assert_eq!(q6_vc.rows.len(), results_text[5], "Q6 differs under VC-IMC");
        let q11_vc = s.db.execute(&nobench_q11_plan(n, true)).unwrap();
        assert_eq!(q11_vc, q11_text, "Q11 differs under VC-IMC");
    }

    #[test]
    fn q6_selectivity_is_about_ten_percent() {
        let n = 1000;
        let mut s = nobench_db(n);
        let r = s.execute(&fsdm_workloads::nobench::query_sql(6, n)).unwrap();
        let frac = r.rows.len() as f64 / n as f64;
        assert!((0.08..=0.12).contains(&frac), "selectivity {frac}");
    }
}

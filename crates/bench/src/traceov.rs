//! `bench trace-overhead`: quantify what disabled tracing costs.
//!
//! The tracing contract is that a span entry point with tracing off is a
//! single relaxed atomic load — cheap enough to stay in the hottest
//! decode loops. This runner verifies the contract end-to-end on the
//! scan-heavy NoBench subset (Q1–Q3, the bench-smoke workload):
//!
//! 1. measure the per-call cost of a disabled span entry point directly
//!    (a tight loop of `span()` calls with no session armed);
//! 2. run Q1–Q3 once under an armed [`TraceSession`] to count how many
//!    span call sites those queries actually execute (recorded plus
//!    cap-dropped spans — every one of them paid the disabled check);
//! 3. multiply: the estimated disabled-mode overhead of the whole
//!    workload, compared against its measured wall time.
//!
//! The budget is ≤ 2% of the Q1–Q3 wall (the bench-smoke noise floor).
//! Measuring the overhead differentially (wall with spans vs a build
//! without them) would need two binaries; the call-count × per-call
//! estimate is deliberately *pessimistic* — it charges every span site
//! the full measured entry cost, ignoring that the real loop overlaps
//! loads — so a pass here is conservative.

use std::time::Instant;

use fsdm_obs::trace::{span, tracing_enabled, TraceSession};

use crate::concurrency::nobench_plans;
use crate::setup::nobench_db;

/// Result of one overhead measurement.
pub struct TraceOverhead {
    /// Measured cost of one disabled span entry point, in nanoseconds.
    pub per_call_ns: f64,
    /// Span call sites executed by one Q1–Q3 pass (recorded + dropped).
    pub span_calls: u64,
    /// Measured Q1–Q3 wall time with tracing disabled, in nanoseconds.
    pub wall_ns: u64,
}

impl TraceOverhead {
    /// Estimated disabled-mode overhead as a fraction of the Q1–Q3 wall.
    pub fn overhead_fraction(&self) -> f64 {
        (self.per_call_ns * self.span_calls as f64) / (self.wall_ns as f64).max(1.0)
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        format!(
            "disabled span entry: {:.2} ns/call\n\
             span call sites in one NoBench Q1-Q3 pass: {}\n\
             Q1-Q3 wall (tracing off): {:.2} ms\n\
             estimated disabled-mode overhead: {:.3}% of wall (budget 2%)\n",
            self.per_call_ns,
            self.span_calls,
            self.wall_ns as f64 / 1e6,
            self.overhead_fraction() * 100.0
        )
    }
}

/// Measure the disabled-span contract over `scale` NoBench documents.
pub fn run(scale: usize) -> TraceOverhead {
    let mut session = nobench_db(scale);
    let plans: Vec<_> = nobench_plans(&session, scale)
        .into_iter()
        .filter(|(label, _)| matches!(label.as_str(), "Q1" | "Q2" | "Q3"))
        .collect();
    session.db.set_parallelism(1); // serial: the per-call estimate has no overlap to hide in

    // 1. per-call cost of the disabled entry point
    assert!(!tracing_enabled(), "trace-overhead must run with tracing off");
    let per_call_ns = {
        const CALLS: u32 = 2_000_000;
        let t = Instant::now();
        for _ in 0..CALLS {
            let g = span(fsdm_obs::catalog::SPAN_STORE_QUERY);
            std::hint::black_box(&g);
        }
        t.elapsed().as_nanos() as f64 / f64::from(CALLS)
    };

    // 2. span call sites one Q1–Q3 pass executes
    let span_calls = {
        let trace_session = TraceSession::begin();
        for (_, plan) in &plans {
            session.db.execute(plan).expect("NOBENCH query executes");
        }
        let trace = trace_session.finish();
        trace.spans.len() as u64 + trace.dropped
    };

    // 3. wall time of the same pass with tracing disabled (best of 3,
    //    one warm-up — the bench-smoke convention)
    let wall = crate::time_best(
        || {
            for (_, plan) in &plans {
                session.db.execute(plan).expect("NOBENCH query executes");
            }
        },
        1,
        3,
    );

    TraceOverhead { per_call_ns, span_calls, wall_ns: wall.as_nanos() as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_stays_inside_the_smoke_budget() {
        let o = run(300);
        assert!(o.span_calls > 0, "an armed pass must see spans");
        assert!(o.wall_ns > 0);
        assert!(
            o.overhead_fraction() <= 0.02,
            "disabled tracing estimated at {:.3}% of Q1-Q3 wall (budget 2%):\n{}",
            o.overhead_fraction() * 100.0,
            o.render()
        );
    }
}

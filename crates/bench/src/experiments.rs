//! Experiment runners: one function per table/figure of the paper.

use std::time::Duration;

use fsdm_dataguide::views::create_view_on_path;
use fsdm_dataguide::DataGuide;
use fsdm_json::{JsonValue, ValueDom};
use fsdm_oson::SegmentStats;
use fsdm_sqljson::Datum;
use fsdm_store::table::InsertValue;
use fsdm_store::{ColType, ColumnSpec, ConstraintMode, JsonStorage, Table, TableSchema};
use fsdm_workloads::{generate, nobench, rng_for, Collection};

use crate::setup::{
    add_nobench_vcs, bind_datum, nobench_db, nobench_q11_plan, nobench_q5_bind, olap_db,
    olap_queries, storage_size, StorageMethod,
};
use crate::time_best;

/// Table 10 row: average encoded sizes per collection.
#[derive(Debug, Clone)]
pub struct SizeRow {
    /// Collection name.
    pub collection: &'static str,
    /// Documents measured.
    pub docs: usize,
    /// Average compact JSON text bytes.
    pub json: usize,
    /// Average BSON bytes.
    pub bson: usize,
    /// Average OSON bytes.
    pub oson: usize,
}

/// Table 11 row: OSON segment shares.
#[derive(Debug, Clone)]
pub struct SegmentRow {
    /// Collection name.
    pub collection: &'static str,
    /// Field-id-name dictionary share (%).
    pub dict_pct: f64,
    /// Tree-node navigation share (%).
    pub tree_pct: f64,
    /// Leaf-scalar-value share (%).
    pub value_pct: f64,
}

/// Table 12 row: DataGuide statistics.
#[derive(Debug, Clone)]
pub struct GuideRow {
    /// Collection name.
    pub collection: &'static str,
    /// `$DG` row count.
    pub distinct_paths: usize,
    /// Root-to-leaf scalar paths (DMDV column count).
    pub dmdv_columns: usize,
    /// DMDV rows ÷ document count.
    pub fan_out: f64,
}

/// Generate a collection's corpus (few documents for the giant archives).
pub fn corpus_for(c: Collection, scale: usize) -> Vec<JsonValue> {
    let count = match c {
        Collection::TwitterMsgArchive => 2,
        Collection::SensorData => 1,
        _ => scale,
    };
    let mut rng = rng_for(c.name(), 2024);
    (0..count).map(|i| generate(c, &mut rng, i)).collect()
}

/// Tables 10 + 11 in one pass over the twelve collections.
pub fn run_size_stats(scale: usize) -> (Vec<SizeRow>, Vec<SegmentRow>) {
    let mut sizes = Vec::new();
    let mut segments = Vec::new();
    for c in Collection::ALL {
        let docs = corpus_for(c, scale);
        let mut tj = 0usize;
        let mut tb = 0usize;
        let mut to = 0usize;
        let (mut dp, mut tp, mut vp) = (0.0f64, 0.0f64, 0.0f64);
        for d in &docs {
            let text = fsdm_json::to_string(d);
            tj += text.len();
            tb += fsdm_bson::encode(d).map(|b| b.len()).unwrap_or(0);
            let oson = fsdm_oson::encode(d).unwrap();
            to += oson.len();
            let st = SegmentStats::of(&oson).unwrap();
            dp += st.dictionary_ratio();
            tp += st.tree_ratio();
            vp += st.values_ratio();
        }
        let n = docs.len();
        sizes.push(SizeRow {
            collection: c.name(),
            docs: n,
            json: tj / n,
            bson: tb / n,
            oson: to / n,
        });
        segments.push(SegmentRow {
            collection: c.name(),
            dict_pct: dp / n as f64 * 100.0,
            tree_pct: tp / n as f64 * 100.0,
            value_pct: vp / n as f64 * 100.0,
        });
    }
    (sizes, segments)
}

/// Table 12: DataGuide statistics per collection.
pub fn run_guide_stats(scale: usize) -> Vec<GuideRow> {
    let mut out = Vec::new();
    for c in Collection::ALL {
        let docs = corpus_for(c, scale);
        let mut guide = DataGuide::new();
        for d in &docs {
            guide.add_document(d);
        }
        let view = create_view_on_path(&guide, "$", "J", "V", 0, &Default::default())
            .expect("non-empty guide");
        let mut rows = 0usize;
        for d in &docs {
            let dom = ValueDom::new(d);
            rows += view.table_def.rows(&dom).len();
        }
        out.push(GuideRow {
            collection: c.name(),
            distinct_paths: guide.distinct_paths(),
            dmdv_columns: guide.leaf_paths(),
            fan_out: rows as f64 / docs.len() as f64,
        });
    }
    out
}

/// Figure 3 cell: one query's time under one storage method.
#[derive(Debug, Clone)]
pub struct OlapCell {
    /// Query id (1..=9).
    pub query: usize,
    /// Storage method.
    pub method: StorageMethod,
    /// Best-of-runs execution time.
    pub time: Duration,
    /// Result row count (sanity: equal across methods).
    pub rows: usize,
}

/// Figure 3: the nine OLAP queries across the four storages.
/// Figure 4 falls out of the same setup via [`storage_size`].
pub fn run_olap(n: usize, reps: usize) -> (Vec<OlapCell>, Vec<(StorageMethod, usize)>) {
    let queries = olap_queries(n);
    let mut cells = Vec::new();
    let mut sizes = Vec::new();
    for method in StorageMethod::ALL {
        let mut session = olap_db(method, n);
        sizes.push((method, storage_size(&session, method)));
        for q in &queries {
            let binds: Vec<Datum> = q.binds.iter().map(|b| bind_datum(b)).collect();
            let mut rows = 0usize;
            let time = time_best(
                || {
                    rows = session.execute_with(&q.sql, &binds).unwrap().rows.len();
                },
                1,
                reps,
            );
            cells.push(OlapCell { query: q.id, method, time, rows });
        }
    }
    (cells, sizes)
}

/// Figure 5/6 cell: one NOBENCH query in one execution mode.
#[derive(Debug, Clone)]
pub struct NobenchCell {
    /// Query id (1..=11).
    pub query: usize,
    /// Mode label ("TEXT", "OSON-IMC", "VC-IMC").
    pub mode: &'static str,
    /// Best-of-runs execution time.
    pub time: Duration,
    /// Result row count.
    pub rows: usize,
}

/// Figures 5 and 6: the eleven NOBENCH queries under TEXT-MODE and
/// OSON-IMC-MODE, plus the four VC queries under VC-IMC-MODE.
pub fn run_nobench(n: usize, reps: usize) -> Vec<NobenchCell> {
    let mut session = nobench_db(n);
    let q5_bind = nobench_q5_bind(n);
    let mut cells = Vec::new();
    let run_all =
        |session: &mut fsdm_sql::Session, mode: &'static str, cells: &mut Vec<NobenchCell>| {
            for q in 1..=11usize {
                let mut rows = 0usize;
                let time = if q == 11 {
                    let plan = nobench_q11_plan(n, false);
                    time_best(
                        || {
                            rows = session.db.execute(&plan).unwrap().rows.len();
                        },
                        1,
                        reps,
                    )
                } else {
                    let sql = nobench::query_sql(q, n);
                    let binds = if q == 5 { vec![q5_bind.clone()] } else { vec![] };
                    time_best(
                        || {
                            rows = session.execute_with(&sql, &binds).unwrap().rows.len();
                        },
                        1,
                        reps,
                    )
                };
                cells.push(NobenchCell { query: q, mode, time, rows });
            }
        };
    run_all(&mut session, "TEXT", &mut cells);
    session.db.table_mut("nobench").unwrap().populate_oson_imc().unwrap();
    run_all(&mut session, "OSON-IMC", &mut cells);
    // Figure 6: the VC queries against materialized columns
    add_nobench_vcs(&mut session);
    session
        .db
        .table_mut("nobench")
        .unwrap()
        .populate_vc_imc(&["nb$str1", "nb$num", "nb$dyn1"])
        .unwrap();
    let lo = n / 2;
    let hi = lo + n / 10;
    let vc_sql: [(usize, String); 3] = [
        (6, format!("select \"nb$num\" from nobench where \"nb$num\" between {lo} and {hi}")),
        (7, format!("select \"nb$dyn1\" from nobench where \"nb$dyn1\" between {lo} and {hi}")),
        (
            10,
            format!(
                "select json_value(jdoc, '$.thousandth' returning number), count(*) from nobench \
             where \"nb$num\" between {lo} and {hi} \
             group by json_value(jdoc, '$.thousandth' returning number)"
            ),
        ),
    ];
    for (q, sql) in &vc_sql {
        let mut rows = 0usize;
        let time = time_best(
            || {
                rows = session.execute(sql).unwrap().rows.len();
            },
            1,
            reps,
        );
        cells.push(NobenchCell { query: *q, mode: "VC-IMC", time, rows });
    }
    let plan = nobench_q11_plan(n, true);
    let mut rows = 0usize;
    let time = time_best(
        || {
            rows = session.db.execute(&plan).unwrap().rows.len();
        },
        1,
        reps,
    );
    cells.push(NobenchCell { query: 11, mode: "VC-IMC", time, rows });
    cells
}

/// Figure 7/8 result: insert time per mode.
#[derive(Debug, Clone)]
pub struct InsertCell {
    /// Mode label.
    pub mode: &'static str,
    /// Wall time to insert the batch.
    pub time: Duration,
    /// Documents inserted.
    pub docs: usize,
}

fn insert_batch(mode: ConstraintMode, docs: &[String]) -> Duration {
    let mut t = Table::new(TableSchema::new(
        "t",
        vec![
            ColumnSpec::new("did", ColType::Number),
            ColumnSpec::json("jdoc", JsonStorage::Text, mode),
        ],
    ));
    let start = std::time::Instant::now();
    for (i, d) in docs.iter().enumerate() {
        t.insert(vec![(i as i64).into(), InsertValue::Json(d.clone())]).unwrap();
    }
    start.elapsed()
}

/// Figure 7: insert 10 000 structurally identical documents in the three
/// constraint modes.
pub fn run_insertion_modes(n: usize) -> Vec<InsertCell> {
    let mut rng = rng_for("fig7", 3);
    // identical structure: only values vary
    let docs: Vec<String> = (0..n)
        .map(|i| {
            let d = nobench::doc(&mut rng, 0); // fixed cluster => same shape
            let mut d = d;
            if let Some(o) = d.as_object_mut() {
                o.insert("num", JsonValue::from(i as i64));
            }
            fsdm_json::to_string(&d)
        })
        .collect();
    vec![
        InsertCell {
            mode: "no-json-constraint",
            time: insert_batch(ConstraintMode::None, &docs),
            docs: n,
        },
        InsertCell {
            mode: "json-constraint",
            time: insert_batch(ConstraintMode::IsJson, &docs),
            docs: n,
        },
        InsertCell {
            mode: "json-constraint-dataguide",
            time: insert_batch(ConstraintMode::IsJsonWithDataGuide, &docs),
            docs: n,
        },
    ]
}

/// Figure 8: homogeneous vs heterogeneous inserts with DataGuide on.
pub fn run_homo_hetero(n: usize) -> Vec<InsertCell> {
    let mut rng = rng_for("fig8", 4);
    let homo: Vec<String> =
        (0..n).map(|_| fsdm_json::to_string(&nobench::doc(&mut rng, 0))).collect();
    let hetero: Vec<String> = (0..n)
        .map(|i| {
            let mut d = nobench::doc(&mut rng, 0);
            if let Some(o) = d.as_object_mut() {
                // every document contributes one brand-new path
                o.push(format!("unique_field_{i}"), JsonValue::from(i as i64));
            }
            fsdm_json::to_string(&d)
        })
        .collect();
    vec![
        InsertCell {
            mode: "homo",
            time: insert_batch(ConstraintMode::IsJsonWithDataGuide, &homo),
            docs: n,
        },
        InsertCell {
            mode: "hetero",
            time: insert_batch(ConstraintMode::IsJsonWithDataGuide, &hetero),
            docs: n,
        },
    ]
}

/// Figure 9 result: transient aggregation at each sampling rate plus
/// persistent index creation.
#[derive(Debug, Clone)]
pub struct AggCell {
    /// Label ("sample 25%", …, "persistent index").
    pub label: String,
    /// Wall time.
    pub time: Duration,
}

/// Figure 9: `JSON_DATAGUIDEAGG` at 25/50/75/99 % sampling vs creating
/// the JSON search index (which computes the persistent DataGuide).
pub fn run_transient_vs_persistent(n: usize) -> Vec<AggCell> {
    let mut session = nobench_db(n);
    let mut out = Vec::new();
    for pct in [25.0, 50.0, 75.0, 99.0] {
        let sql = format!("select json_dataguideagg(jdoc) from nobench sample ({pct})");
        let time = time_best(
            || {
                session.execute(&sql).unwrap();
            },
            0,
            1,
        );
        out.push(AggCell { label: format!("transient sample {pct}%"), time });
    }
    let t = std::time::Instant::now();
    session.db.table_mut("nobench").unwrap().create_search_index().unwrap();
    out.push(AggCell { label: "persistent index creation".to_string(), time: t.elapsed() });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_stats_shapes_match_paper() {
        let (sizes, segments) = run_size_stats(40);
        assert_eq!(sizes.len(), 12);
        let by_name = |n: &str| sizes.iter().find(|r| r.collection == n).unwrap();
        // small docs: formats are within ~2x of each other
        let po = by_name("purchaseOrder");
        assert!(po.oson < po.json * 2 && po.json < po.oson * 2);
        // the archive compresses markedly under OSON (repeated names)
        let ar = by_name("TwitterMsgArchive");
        assert!(
            (ar.oson as f64) < ar.json as f64 * 0.75,
            "archive OSON {} vs JSON {}",
            ar.oson,
            ar.json
        );
        // dictionary share: large for LoanNotes, negligible for archives
        let seg = |n: &str| segments.iter().find(|r| r.collection == n).unwrap();
        assert!(seg("LoanNotes").dict_pct > 35.0);
        assert!(seg("TwitterMsgArchive").dict_pct < 2.0);
        assert!(seg("SensorData").tree_pct > 50.0);
        assert!(seg("YCSBDoc").value_pct > 60.0);
    }

    #[test]
    fn guide_stats_reasonable() {
        let rows = run_guide_stats(40);
        let g = |n: &str| rows.iter().find(|r| r.collection == n).unwrap();
        assert!(g("NOBENCHDoc").distinct_paths > 350, "sparse universe at scale 40");
        assert_eq!(g("YCSBDoc").distinct_paths, 11);
        assert!(g("purchaseOrder").fan_out > 3.0);
        assert!(g("SensorData").fan_out > 10_000.0);
        for r in &rows {
            assert!(r.dmdv_columns <= r.distinct_paths, "{}", r.collection);
        }
    }

    #[test]
    fn olap_runs_small() {
        let (cells, sizes) = run_olap(60, 1);
        assert_eq!(cells.len(), 9 * 4);
        assert_eq!(sizes.len(), 4);
        // row counts agree across methods per query
        for q in 1..=9 {
            let counts: Vec<usize> =
                cells.iter().filter(|c| c.query == q).map(|c| c.rows).collect();
            assert!(counts.windows(2).all(|w| w[0] == w[1]), "Q{q}: {counts:?}");
        }
    }

    #[test]
    fn nobench_runs_small() {
        let cells = run_nobench(300, 1);
        // 11 TEXT + 11 OSON-IMC + 4 VC-IMC
        assert_eq!(cells.len(), 26);
        for q in 1..=11 {
            let text = cells.iter().find(|c| c.query == q && c.mode == "TEXT").unwrap();
            let oson = cells.iter().find(|c| c.query == q && c.mode == "OSON-IMC").unwrap();
            assert_eq!(text.rows, oson.rows, "Q{q}");
        }
    }

    #[test]
    fn insertion_modes_ordered() {
        let cells = run_insertion_modes(800);
        assert_eq!(cells.len(), 3);
        // constraint adds cost over no-constraint; dataguide adds over
        // constraint (allowing generous noise at this tiny scale)
        assert!(cells[0].time <= cells[2].time * 3);
    }

    #[test]
    fn transient_vs_persistent_runs() {
        let cells = run_transient_vs_persistent(400);
        assert_eq!(cells.len(), 5);
    }
}

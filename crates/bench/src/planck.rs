//! The workload type-check harness behind the `fsdm-planck` binary and
//! its CI gate.
//!
//! Each workload's database is rebuilt exactly as the benchmarks load
//! it, every query the paper issues is planned and put through
//! `Session::typecheck` — plan-level schema/type inference plus the
//! optimizer translation validator — and the PK findings are aggregated
//! with severity totals. NoBench Q11 and the OLAP view bodies have no
//! SQL text of their own, so their plans are checked directly. CI fails
//! the build on any error-severity finding.

use fsdm_planck::{render_json, render_text, Query, Severity};
use fsdm_sql::{Diagnostic, SqlError};
use fsdm_workloads::nobench;

use crate::setup::{
    add_nobench_vcs, bind_datum, nobench_guided_db, nobench_q11_plan, nobench_q5_bind,
    olap_guided_db, olap_queries,
};

/// One type-checked statement (or directly-checked plan).
#[derive(Debug, Clone)]
pub struct PlanckItem {
    /// Stable label, e.g. `nobench:Q3` or `view:po_item_dmdv`.
    pub label: String,
    /// The SQL text, or a plan description for plan-level items.
    pub text: String,
    /// Inferred output schema, rendered (`name:type?` per column).
    pub schema: String,
    /// Planck findings, most severe first in rendered output.
    pub diagnostics: Vec<Diagnostic>,
}

/// A full type-check run over one or more workloads.
#[derive(Debug, Clone)]
pub struct PlanckReport {
    /// Corpus scale the databases were built at.
    pub scale: usize,
    /// Every checked statement, in workload order.
    pub items: Vec<PlanckItem>,
}

impl PlanckReport {
    fn count(&self, sev: Severity) -> usize {
        self.items.iter().flat_map(|i| &i.diagnostics).filter(|d| d.severity == sev).count()
    }

    /// Findings that fail the CI budget.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Advisory warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Advisory info-severity findings.
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    /// Append another report's items (the `--workload both` case).
    pub fn merge(&mut self, other: PlanckReport) {
        self.items.extend(other.items);
    }

    /// Human-readable report: every statement's inferred schema, the
    /// findings where there are any, then a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for item in &self.items {
            out.push_str(&format!("{}: [{}]\n", item.label, item.schema));
            for line in render_text(&item.diagnostics).lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "fsdm-planck: {} plan(s) at scale {}: {} error(s), {} warning(s), {} info(s)\n",
            self.items.len(),
            self.scale,
            self.errors(),
            self.warnings(),
            self.infos()
        ));
        out
    }

    /// Machine-readable report (the `--json` / CI shape).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str("  \"statements\": [\n");
        for (i, item) in self.items.iter().enumerate() {
            let sep = if i + 1 == self.items.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"text\": \"{}\", \"schema\": \"{}\", \
                 \"diagnostics\": {}}}{sep}\n",
                json_escape(&item.label),
                json_escape(&item.text),
                json_escape(&item.schema),
                render_json(&item.diagnostics)
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"errors\": {}, \"warnings\": {}, \"infos\": {}\n}}",
            self.errors(),
            self.warnings(),
            self.infos()
        ));
        out
    }
}

/// Type-check NoBench Q1–Q10 (SQL) and Q11 (plan-level, both the
/// json_value and virtual-column join variants) against the same
/// deterministic corpus the benchmarks load.
pub fn planck_nobench(n: usize) -> Result<PlanckReport, SqlError> {
    let mut session = nobench_guided_db(n);
    // the VC variant of Q11 needs the nb$ virtual columns on the scan
    add_nobench_vcs(&mut session);
    let mut items = Vec::new();
    for q in 1..=10 {
        let sql = nobench::query_sql(q, n);
        let binds = if q == 5 { vec![nobench_q5_bind(n)] } else { Vec::new() };
        let inf = session.typecheck_with(&sql, &binds)?;
        items.push(PlanckItem {
            label: format!("nobench:Q{q}"),
            text: sql,
            schema: inf.schema.render(),
            diagnostics: inf.diagnostics,
        });
    }
    for (suffix, vc) in [("", false), ("vc", true)] {
        let plan = nobench_q11_plan(n, vc);
        let inf = session.typecheck_plan(&plan);
        items.push(PlanckItem {
            label: format!("nobench:Q11{suffix}"),
            text: plan_text(&plan),
            schema: inf.schema.render(),
            diagnostics: inf.diagnostics,
        });
    }
    Ok(PlanckReport { scale: n, items })
}

/// Type-check the Table 13 OLAP SQL, then the `po_mv` / `po_item_dmdv`
/// view bodies themselves (every query goes through them, so a type
/// defect inside a view surfaces once, under its own label).
pub fn planck_olap(n: usize) -> Result<PlanckReport, SqlError> {
    let session = olap_guided_db(n);
    let mut items = Vec::new();
    for q in olap_queries(n) {
        let binds: Vec<_> = q.binds.iter().map(|s| bind_datum(s)).collect();
        let inf = session.typecheck_with(&q.sql, &binds)?;
        items.push(PlanckItem {
            label: format!("olap:Q{}", q.id),
            text: q.sql,
            schema: inf.schema.render(),
            diagnostics: inf.diagnostics,
        });
    }
    for view in ["po_mv", "po_item_dmdv"] {
        let plan = Query::view(view);
        let inf = session.typecheck_plan(&plan);
        items.push(PlanckItem {
            label: format!("view:{view}"),
            text: format!("VIEW {view}"),
            schema: inf.schema.render(),
            diagnostics: inf.diagnostics,
        });
    }
    Ok(PlanckReport { scale: n, items })
}

/// One-line plan description for the report (`GroupBy <- HashJoin <- …`
/// would be noise; the root operator line is enough to identify it).
fn plan_text(plan: &Query) -> String {
    plan.render().lines().next().unwrap_or_default().trim().to_string()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nobench_typecheck_is_error_free() {
        let report = planck_nobench(300).unwrap();
        assert_eq!(report.items.len(), 12, "{}", report.render_text());
        assert_eq!(report.errors(), 0, "{}", report.render_text());
        // every item carries an inferred schema
        assert!(report.items.iter().all(|i| !i.schema.is_empty()), "{}", report.render_text());
        // Q11's count is proven non-nullable (no `?` marker)
        let q11 = report.items.iter().find(|i| i.label == "nobench:Q11").unwrap();
        assert_eq!(q11.schema, "n:int");
    }

    #[test]
    fn olap_typecheck_is_error_free_and_covers_views() {
        let report = planck_olap(200).unwrap();
        assert_eq!(report.errors(), 0, "{}", report.render_text());
        let labels: Vec<&str> = report.items.iter().map(|i| i.label.as_str()).collect();
        assert!(labels.contains(&"olap:Q1"), "{labels:?}");
        assert!(labels.contains(&"view:po_mv"), "{labels:?}");
        assert!(labels.contains(&"view:po_item_dmdv"), "{labels:?}");
        let mv = report.items.iter().find(|i| i.label == "view:po_mv").unwrap();
        assert!(mv.schema.starts_with("did:float?"), "{}", mv.schema);
    }

    #[test]
    fn merged_reports_render_the_ci_shape() {
        let mut a = planck_nobench(120).unwrap();
        let b = planck_olap(120).unwrap();
        let total = a.items.len() + b.items.len();
        a.merge(b);
        assert_eq!(a.items.len(), total);
        let json = a.render_json();
        assert!(json.contains("\"errors\": 0"), "{json}");
        assert!(json.contains("\"schema\": \""), "{json}");
        // the report must stay parseable by the repro re-parse gate
        assert!(fsdm_json::parse(&json).is_ok());
    }
}

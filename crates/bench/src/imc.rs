//! `bench imc`: row vs columnar execution over the VC-IMC.
//!
//! The vectorized executor's bargain is that batch kernels over column
//! vectors beat row-at-a-time evaluation *on the same data*. This runner
//! holds everything else fixed — one NOBENCH corpus, the Q1–Q3 virtual
//! columns materialized into the IMC, the same optimized plans — and
//! times each query twice through [`Database::set_columnar`]: once on
//! the scratch-based row path, once on the batch pipeline. Results are
//! byte-identical either way (`tests/vectorized_identity.rs` asserts
//! it); only wall-clock time may change, and on the kernel-covered
//! Q1–Q3 subset columnar must never lose.
//!
//! [`Database::set_columnar`]: fsdm_store::Database::set_columnar

use std::time::Duration;

use crate::concurrency::nobench_plans;
use crate::setup::{add_nobench_columnar_vcs, nobench_db};

/// Row-path and columnar-path best wall times for one query.
pub struct ImcTiming {
    /// Query label (`Q1` … `Q11`).
    pub label: String,
    /// Best observed wall time on the row pipeline.
    pub row: Duration,
    /// Best observed wall time on the columnar pipeline.
    pub columnar: Duration,
}

/// One full run: per-query timings over a shared corpus.
pub struct ImcRun {
    /// Corpus size the run measured.
    pub scale: usize,
    /// Per-query timings, in workload order Q1–Q11.
    pub per_query: Vec<ImcTiming>,
}

impl ImcRun {
    /// Summed best row-path time of the kernel-covered subset Q1–Q3.
    pub fn scan_heavy_row(&self) -> Duration {
        self.subset(|t| t.row)
    }

    /// Summed best columnar time of the kernel-covered subset Q1–Q3.
    pub fn scan_heavy_columnar(&self) -> Duration {
        self.subset(|t| t.columnar)
    }

    fn subset(&self, f: impl Fn(&ImcTiming) -> Duration) -> Duration {
        self.per_query
            .iter()
            .filter(|t| matches!(t.label.as_str(), "Q1" | "Q2" | "Q3"))
            .map(f)
            .sum()
    }
}

/// Time the NOBENCH set on both pipelines over one corpus of `scale`
/// documents with the Q1–Q3 virtual columns in the IMC. `warmup`/`reps`
/// feed [`crate::time_best`] per (query, pipeline) pair.
pub fn run(scale: usize, warmup: usize, reps: usize) -> ImcRun {
    let mut session = nobench_db(scale);
    add_nobench_columnar_vcs(&mut session);
    let plans = nobench_plans(&session, scale);
    let mut per_query = Vec::with_capacity(plans.len());
    for (label, plan) in &plans {
        session.db.set_columnar(false);
        let row = crate::time_best(
            || {
                session.db.execute(plan).expect("NOBENCH query executes (row)");
            },
            warmup,
            reps,
        );
        session.db.set_columnar(true);
        let columnar = crate::time_best(
            || {
                session.db.execute(plan).expect("NOBENCH query executes (columnar)");
            },
            warmup,
            reps,
        );
        per_query.push(ImcTiming { label: label.clone(), row, columnar });
    }
    session.db.set_columnar(true);
    ImcRun { scale, per_query }
}

/// Table rendering: one row per query with both pipelines' ms and the
/// columnar speedup, plus the Q1–Q3 subtotal line the smoke gate checks.
pub fn render(run: &ImcRun) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== bench imc: NOBENCH row vs columnar (n = {}) ==", run.scale);
    let _ = writeln!(out, "{:<8} {:>10} {:>12} {:>9}", "query", "row ms", "columnar ms", "speedup");
    for t in &run.per_query {
        let speedup = t.row.as_secs_f64() / t.columnar.as_secs_f64().max(1e-9);
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>12} {:>8.2}x",
            t.label,
            crate::ms(t.row),
            crate::ms(t.columnar),
            speedup
        );
    }
    let (r, c) = (run.scan_heavy_row(), run.scan_heavy_columnar());
    let _ = writeln!(
        out,
        "Q1-3 subtotal: row {} ms, columnar {} ms ({:.2}x)",
        crate::ms(r),
        crate::ms(c),
        r.as_secs_f64() / c.as_secs_f64().max(1e-9)
    );
    out
}

/// Machine-readable rendering of an IMC run, schema `fsdm-bench-imc-v1`:
///
/// ```json
/// {"schema":"fsdm-bench-imc-v1","git_rev":"abc1234","scale":4000,
///  "per_query":{"Q1":{"row_ms":1.23,"columnar_ms":0.41,"speedup":3.0},…},
///  "scan_heavy":{"row_ms":…,"columnar_ms":…,"speedup":…}}
/// ```
///
/// The schema is stable: additions may append fields, never rename or
/// re-type existing ones, so `BENCH_imc.json` files accumulate into a
/// comparable perf trajectory across revisions.
pub fn to_json(run: &ImcRun) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"schema\":\"fsdm-bench-imc-v1\"");
    let _ = write!(
        out,
        ",\"git_rev\":\"{}\",\"scale\":{},\"per_query\":{{",
        crate::concurrency::git_rev(),
        run.scale
    );
    for (i, t) in run.per_query.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (row, col) = (t.row.as_secs_f64() * 1e3, t.columnar.as_secs_f64() * 1e3);
        let _ = write!(
            out,
            "\"{}\":{{\"row_ms\":{row:.3},\"columnar_ms\":{col:.3},\"speedup\":{:.3}}}",
            t.label,
            row / col.max(1e-9)
        );
    }
    let (r, c) = (run.scan_heavy_row(), run.scan_heavy_columnar());
    let _ = write!(
        out,
        "}},\"scan_heavy\":{{\"row_ms\":{:.3},\"columnar_ms\":{:.3},\"speedup\":{:.3}}}}}",
        r.as_secs_f64() * 1e3,
        c.as_secs_f64() * 1e3,
        r.as_secs_f64() / c.as_secs_f64().max(1e-9)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_follows_the_stable_schema() {
        let run = run(80, 0, 1);
        let json = to_json(&run);
        assert!(json.contains("\"schema\":\"fsdm-bench-imc-v1\""), "{json}");
        assert!(json.contains("\"git_rev\":\""), "{json}");
        assert!(json.contains("\"scale\":80"), "{json}");
        assert!(json.contains("\"Q1\":{\"row_ms\":"), "{json}");
        assert!(json.contains("\"scan_heavy\":{\"row_ms\":"), "{json}");
        // must parse with the in-repo JSON parser
        fsdm_json::parse(&json).expect("bench JSON parses");
    }

    #[test]
    fn run_times_both_pipelines_and_renders() {
        let r = run(120, 0, 1);
        assert_eq!(r.per_query.len(), 11, "Q1..Q11");
        assert!(r.scan_heavy_row() > Duration::ZERO);
        assert!(r.scan_heavy_columnar() > Duration::ZERO);
        let text = render(&r);
        assert!(text.contains("columnar ms"), "{text}");
        assert!(text.contains("Q1-3 subtotal"), "{text}");
    }
}

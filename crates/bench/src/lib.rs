//! Shared harness for the `repro` binary and the criterion benches: corpus
//! setup for each experiment, view registration per storage method, and
//! the experiment runners that regenerate the paper's tables and figures.

pub mod chaos;
pub mod concurrency;
pub mod experiments;
pub mod governov;
pub mod imc;
pub mod lint;
pub mod planck;
pub mod setup;
pub mod traceov;

use std::time::{Duration, Instant};

/// Time `f` once after `warmup` warm-up runs, then return the best of
/// `reps` timed runs (minimum is the standard low-noise estimator for
/// CPU-bound work).
pub fn time_best<F: FnMut()>(mut f: F, warmup: usize, reps: usize) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

/// Milliseconds with two decimals for table output.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

//! `fsdm-planck`: type-check the paper's workload queries at the plan
//! level — schema/type inference plus optimizer translation validation
//! (PK001–PK006 diagnostics).
//!
//! ```text
//! fsdm-planck                              # check both workloads
//! fsdm-planck --workload nobench           # NoBench Q1-Q11 only
//! fsdm-planck --workload olap --scale 500  # OLAP Table 13 at scale 500
//! fsdm-planck --json                       # machine-readable report
//! ```
//!
//! Exit status is non-zero when any error-severity finding remains —
//! the CI budget.

use std::process::ExitCode;

use fsdm_bench::planck::{planck_nobench, planck_olap, PlanckReport};

struct Options {
    workload: String,
    scale: usize,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let usage = "usage: fsdm-planck [--workload nobench|olap|both] [--scale N] [--json]";
    let mut opts = Options { workload: "both".to_string(), scale: 1000, json: false };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--workload" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(w @ ("nobench" | "olap" | "both")) => opts.workload = w.to_string(),
                    _ => return Err(format!("--workload needs nobench|olap|both\n{usage}")),
                }
            }
            "--scale" => {
                i += 1;
                opts.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--scale needs a number\n{usage}"))?;
            }
            "--help" | "-h" => return Err(usage.to_string()),
            other => return Err(format!("unknown argument {other}\n{usage}")),
        }
        i += 1;
    }
    Ok(opts)
}

fn build_report(opts: &Options) -> Result<PlanckReport, String> {
    let mut report = match opts.workload.as_str() {
        "nobench" => planck_nobench(opts.scale).map_err(|e| e.to_string())?,
        "olap" => planck_olap(opts.scale).map_err(|e| e.to_string())?,
        _ => {
            let mut r = planck_nobench(opts.scale).map_err(|e| e.to_string())?;
            r.merge(planck_olap(opts.scale).map_err(|e| e.to_string())?);
            r
        }
    };
    report.scale = opts.scale;
    Ok(report)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let report = match build_report(&opts) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("fsdm-planck: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! `repro`: regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all                 # everything at default scale
//! repro table10 [--scale N] # sizes (Table 10)
//! repro table11             # OSON segment ratios (Table 11)
//! repro table12             # DataGuide statistics (Table 12)
//! repro fig3 [--scale N]    # OLAP queries across 4 storages (Figure 3)
//! repro fig4                # storage sizes (Figure 4)
//! repro fig5 [--scale N]    # NOBENCH TEXT vs OSON-IMC (Figure 5)
//! repro fig6                # VC-IMC on Q6/Q7/Q10/Q11 (Figure 6)
//! repro fig7 [--scale N]    # insertion constraint modes (Figure 7)
//! repro fig8                # homogeneous vs heterogeneous (Figure 8)
//! repro fig9 [--scale N]    # transient vs persistent DataGuide (Figure 9)
//! ```
//!
//! Absolute numbers depend on the host; what must match the paper is the
//! *shape* — who wins, by roughly what factor (see EXPERIMENTS.md).
//!
//! `--threads N` pins the parallel executor's degree for every
//! experiment (equivalent to running with `FSDM_THREADS=N`); without it
//! the degree defaults to the machine's available parallelism.
//!
//! Every run finishes by printing the engine-wide metrics snapshot
//! (`oson.*`, `sqljson.*`, `dataguide.*`, `index.*`, `store.*` — see
//! README's Observability section) and writing it as JSON to
//! `repro-metrics.json` for offline diffing. Pass `--no-metrics` to skip
//! both. Pass `--lint-report` to also run the `fsdm-analyze` semantic
//! lint over both workload query sets and write `repro-lint.json`;
//! `--typecheck-report FILE` runs the `fsdm-planck` plan type-check the
//! same way and writes FILE (conventionally `repro-planck.json`),
//! re-parsing it through `fsdm-json` before the run is declared good.
//! `--sentinel-report FILE` runs the `fsdm-sentinel` concurrency
//! analysis over the workspace sources and writes FILE (conventionally
//! `repro-sentinel.json`) under the same re-parse and zero-error gate.
//! `--chaos-report FILE` runs the smoke-shaped chaos suite (seeded
//! failpoint schedules over both workloads, see `fsdm_bench::chaos`)
//! and writes FILE (conventionally `repro-chaos.json`), exiting
//! non-zero on any governance-contract violation.
//!
//! `--timeout-ms N` arms a statement deadline for every query of the
//! run (a statement that runs past it dies with a typed deadline
//! error); `FSDM_FAILPOINTS=name=mode;...` arms cataloged failpoints
//! for the whole run — see README's Query governance section.
//!
//! `--trace FILE` (optionally with `--slow-log FILE`) switches to the
//! tracing demo instead of the experiments: it runs the full NOBENCH set
//! (Q1–Q11, default `--scale 500`) under an armed trace session per
//! query, validates every span tree, and writes one merged Chrome
//! trace-event JSON to FILE — load it in Perfetto (ui.perfetto.dev) or
//! `chrome://tracing`. `--slow-log FILE` additionally arms the
//! slow-query ring log for the same run and dumps it as JSON. Both
//! files are re-parsed before the run is declared good; any malformed
//! trace exits non-zero.

use fsdm_bench::experiments::*;
use fsdm_bench::lint::{lint_nobench, lint_olap};
use fsdm_bench::ms;
use fsdm_bench::setup::StorageMethod;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // --threads N pins the executor degree for every experiment in this
    // run. It must happen before any query executes: the process-wide
    // default is resolved once, from FSDM_THREADS, on first use.
    if let Some(n) = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
    {
        std::env::set_var("FSDM_THREADS", n.to_string());
    }
    // --timeout-ms N arms a statement deadline for every query of this
    // run; same resolve-once discipline as --threads
    if let Some(n) = args
        .iter()
        .position(|a| a == "--timeout-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
    {
        std::env::set_var("FSDM_TIMEOUT_MS", n.to_string());
    }
    match fsdm_fault::init_from_env() {
        Ok(0) => {}
        Ok(n) => {
            // injected panics are expected and caught by the executor;
            // keep their default backtrace spew out of the report
            fsdm_fault::silence_failpoint_panics();
            println!("{n} failpoint(s) armed from FSDM_FAILPOINTS");
        }
        Err(e) => {
            eprintln!("FSDM_FAILPOINTS: {e}");
            std::process::exit(2);
        }
    }
    let cmd = match args.first().map(|s| s.as_str()) {
        // a leading flag means "everything, with options"
        Some(s) if s.starts_with("--") => "all",
        Some(s) => s,
        None => "all",
    };
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok());
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(|s| s.as_str())
    };
    let (trace_path, slow_path) = (flag("--trace"), flag("--slow-log"));
    if trace_path.is_some() || slow_path.is_some() {
        // the tracing demo replaces the experiment run: tracing the full
        // default-scale evaluation would produce gigabytes of spans
        run_trace_demo(scale.unwrap_or(500), trace_path, slow_path);
        return;
    }
    let reps = 3;
    match cmd {
        "table10" => table10(scale.unwrap_or(300)),
        "table11" => table11(scale.unwrap_or(300)),
        "table12" => table12(scale.unwrap_or(300)),
        "fig3" => fig3_fig4(scale.unwrap_or(20_000), reps, true, false),
        "fig4" => fig3_fig4(scale.unwrap_or(20_000), 1, false, true),
        "fig5" => fig5_fig6(scale.unwrap_or(20_000), reps, true, false),
        "fig6" => fig5_fig6(scale.unwrap_or(20_000), reps, false, true),
        "fig7" => fig7(scale.unwrap_or(10_000)),
        "fig8" => fig8(scale.unwrap_or(10_000)),
        "fig9" => fig9(scale.unwrap_or(50_000)),
        "all" => {
            let s = scale;
            table10(s.unwrap_or(300));
            table11(s.unwrap_or(300));
            table12(s.unwrap_or(300));
            fig3_fig4(s.unwrap_or(20_000), reps, true, true);
            fig5_fig6(s.unwrap_or(20_000), reps, true, true);
            fig7(s.unwrap_or(10_000));
            fig8(s.unwrap_or(10_000));
            fig9(s.unwrap_or(50_000));
        }
        other => {
            eprintln!("unknown command {other}; see the module docs");
            std::process::exit(2);
        }
    }
    if args.iter().any(|a| a == "--lint-report") {
        dump_lint_report(scale.unwrap_or(1000));
    }
    if let Some(path) = flag("--typecheck-report") {
        dump_typecheck_report(scale.unwrap_or(1000), path);
    }
    if let Some(path) = flag("--sentinel-report") {
        dump_sentinel_report(path);
    }
    if let Some(path) = flag("--chaos-report") {
        dump_chaos_report(path);
    }
    if !args.iter().any(|a| a == "--no-metrics") {
        dump_metrics();
    }
}

/// `repro --trace FILE [--slow-log FILE]`: trace the NOBENCH set query
/// by query, validate every span tree, and persist the merged Chrome
/// trace (plus the slow-query ring dump when asked).
fn run_trace_demo(scale: usize, trace_path: Option<&str>, slow_path: Option<&str>) {
    use fsdm_bench::setup::{nobench_db, nobench_q11_plan, nobench_q5_bind};
    use fsdm_obs::catalog::{SPAN_EXEC_MORSEL, SPAN_EXEC_OP};
    use fsdm_obs::trace::Trace;

    let fail = |msg: &str| -> ! {
        eprintln!("TRACE DEMO FAIL: {msg}");
        std::process::exit(1);
    };

    println!("== repro --trace: NOBENCH Q1-Q11 under the span recorder (n = {scale}) ==");
    let mut session = nobench_db(scale);
    if slow_path.is_some() {
        // threshold 0: every traced query qualifies, so the ring shows
        // the demo's slowest survivors
        session.db.set_slow_log(0, 16);
    }

    // trace each query in its own session, then splice the sessions
    // one after another onto a single timeline (span ids are globally
    // unique, so the merged tree stays well-formed)
    let mut merged = Trace { spans: Vec::new(), dropped: 0 };
    let mut cursor_ns = 0u64;
    println!("{:<6} {:>8} {:>8} {:>10} {:>9}", "query", "rows", "spans", "morsels", "ops");
    for q in 1..=11 {
        let (rows, profile, trace) = if q == 11 {
            let plan = nobench_q11_plan(scale, false);
            let (result, profile, trace) = session
                .db
                .execute_traced(&plan)
                .unwrap_or_else(|e| fail(&format!("Q11 failed: {e}")));
            (result.rows.len(), Some(profile), trace)
        } else {
            let sql = fsdm_workloads::nobench::query_sql(q, scale);
            let binds = if q == 5 { vec![nobench_q5_bind(scale)] } else { vec![] };
            let (result, profile, trace) = session
                .trace_with(&sql, &binds)
                .unwrap_or_else(|e| fail(&format!("Q{q} failed: {e}")));
            (result.rows.len(), profile, trace)
        };
        if let Err(e) = trace.validate() {
            fail(&format!("Q{q} produced a malformed trace: {e}"));
        }
        let profile = profile.unwrap_or_else(|| fail(&format!("Q{q} returned no profile")));
        let ops = profile.ops().len();
        if trace.count(SPAN_EXEC_OP) < ops {
            fail(&format!(
                "Q{q}: {} exec.op spans for {ops} profiled operators",
                trace.count(SPAN_EXEC_OP)
            ));
        }
        if trace.count(SPAN_EXEC_MORSEL) != profile.total_morsels() {
            fail(&format!(
                "Q{q}: {} morsel spans vs {} profiled morsels",
                trace.count(SPAN_EXEC_MORSEL),
                profile.total_morsels()
            ));
        }
        println!(
            "Q{:<5} {:>8} {:>8} {:>10} {:>9}",
            q,
            rows,
            trace.spans.len(),
            profile.total_morsels(),
            ops
        );
        let span_end = trace.spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
        merged.dropped += trace.dropped;
        merged.spans.extend(trace.spans.into_iter().map(|mut s| {
            s.start_ns += cursor_ns;
            s.end_ns += cursor_ns;
            s
        }));
        cursor_ns += span_end + 1_000; // 1 µs gap between queries on the timeline
    }

    if let Err(e) = merged.validate() {
        fail(&format!("merged trace is malformed: {e}"));
    }
    if let Some(path) = trace_path {
        let json = merged.to_chrome_json();
        if let Err(e) = std::fs::write(path, &json) {
            fail(&format!("could not write {path}: {e}"));
        }
        if let Err(e) = fsdm_json::parse(&json) {
            fail(&format!("{path} is not valid JSON: {e}"));
        }
        println!(
            "trace ok: {} spans ({} dropped) written to {path} — open in Perfetto",
            merged.spans.len(),
            merged.dropped
        );
    }
    if let Some(path) = slow_path {
        let json = session.db.slow_log_json();
        if let Err(e) = std::fs::write(path, &json) {
            fail(&format!("could not write {path}: {e}"));
        }
        if let Err(e) = fsdm_json::parse(&json) {
            fail(&format!("{path} is not valid JSON: {e}"));
        }
        let captured = session.db.slow_log().entries().len();
        println!("slow-log ok: {captured} ring entries written to {path}");
    }
}

/// Run the semantic lint over both workload query sets and persist the
/// findings next to the results.
fn dump_lint_report(scale: usize) {
    println!("\n== fsdm-analyze: workload semantic lint (scale {scale}) ==");
    let report = lint_nobench(scale).and_then(|mut r| {
        r.merge(lint_olap(scale)?);
        Ok(r)
    });
    match report {
        Ok(r) => {
            print!("{}", r.render_text());
            let path = "repro-lint.json";
            match std::fs::write(path, r.render_json()) {
                Ok(()) => println!("lint report written to {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        Err(e) => eprintln!("lint failed: {e}"),
    }
}

/// Run the planck plan type-check over both workload query sets,
/// persist the findings to `path`, and prove the file round-trips
/// through the JSON parser before the run is declared good.
fn dump_typecheck_report(scale: usize, path: &str) {
    use fsdm_bench::planck::{planck_nobench, planck_olap};
    println!("\n== fsdm-planck: workload plan typecheck (scale {scale}) ==");
    let report = planck_nobench(scale).and_then(|mut r| {
        r.merge(planck_olap(scale)?);
        Ok(r)
    });
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("typecheck failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render_text());
    let json = report.render_json();
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
        std::process::exit(1);
    }
    // same re-parse gate as the trace exports: a report CI cannot read
    // back is a failure, not an artifact
    match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| fsdm_json::parse(&text).map_err(|e| format!("{e:?}")).map(drop))
    {
        Ok(()) => println!("typecheck report written to {path} (re-parsed OK)"),
        Err(e) => {
            eprintln!("typecheck report {path} does not re-parse: {e}");
            std::process::exit(1);
        }
    }
    if report.errors() > 0 {
        eprintln!("typecheck found {} error(s)", report.errors());
        std::process::exit(1);
    }
}

/// `--sentinel-report FILE`: run the `fsdm-sentinel` concurrency
/// analysis over the workspace sources and persist the machine-readable
/// findings, with the same write/re-parse/zero-error gate as the other
/// report flags.
fn dump_sentinel_report(path: &str) {
    println!("\n== fsdm-sentinel: workspace concurrency analysis ==");
    let report = match fsdm_sentinel::analyze_workspace(std::path::Path::new(".")) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sentinel scan failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render_text());
    let json = report.render_json();
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
        std::process::exit(1);
    }
    match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| fsdm_json::parse(&text).map_err(|e| format!("{e:?}")).map(drop))
    {
        Ok(()) => println!("sentinel report written to {path} (re-parsed OK)"),
        Err(e) => {
            eprintln!("sentinel report {path} does not re-parse: {e}");
            std::process::exit(1);
        }
    }
    if report.errors() > 0 {
        eprintln!("sentinel found {} error(s)", report.errors());
        std::process::exit(1);
    }
}

/// `--chaos-report FILE`: run the smoke-shaped chaos suite and persist
/// the machine-readable outcomes, with the same write/re-parse/zero-
/// violation gate as the other report flags.
fn dump_chaos_report(path: &str) {
    use fsdm_bench::chaos;
    println!("\n== bench chaos: governance contract under injected faults ==");
    let report = chaos::run(&chaos::ChaosConfig::smoke());
    print!("{}", report.render());
    let json = report.to_json();
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
        std::process::exit(1);
    }
    match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| fsdm_json::parse(&text).map_err(|e| format!("{e:?}")).map(drop))
    {
        Ok(()) => println!("chaos report written to {path} (re-parsed OK)"),
        Err(e) => {
            eprintln!("chaos report {path} does not re-parse: {e}");
            std::process::exit(1);
        }
    }
    let violations = report.violations().len();
    if violations > 0 {
        eprintln!("chaos found {violations} contract violation(s)");
        std::process::exit(1);
    }
}

/// Print the engine-wide metrics accumulated while regenerating the
/// tables/figures and persist them as JSON next to the results.
fn dump_metrics() {
    let snap = fsdm_obs::snapshot();
    println!("\n== Engine metrics (cumulative over this run) ==");
    print!("{}", snap.to_table());
    let path = "repro-metrics.json";
    match std::fs::write(path, snap.to_json()) {
        Ok(()) => println!("metrics snapshot written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn table10(scale: usize) {
    println!("\n== Table 10: average encoded size per document (bytes) ==");
    println!("{:<20} {:>6} {:>12} {:>12} {:>12}", "collection", "docs", "JSON", "BSON", "OSON");
    let (rows, _) = run_size_stats(scale);
    for r in rows {
        println!("{:<20} {:>6} {:>12} {:>12} {:>12}", r.collection, r.docs, r.json, r.bson, r.oson);
    }
}

fn table11(scale: usize) {
    println!("\n== Table 11: OSON three-segment size shares (%) ==");
    println!("{:<20} {:>10} {:>10} {:>10}", "collection", "dict", "tree", "values");
    let (_, rows) = run_size_stats(scale);
    for r in rows {
        println!(
            "{:<20} {:>9.2}% {:>9.2}% {:>9.2}%",
            r.collection, r.dict_pct, r.tree_pct, r.value_pct
        );
    }
}

fn table12(scale: usize) {
    println!("\n== Table 12: JSON DataGuide statistics ==");
    println!(
        "{:<20} {:>15} {:>14} {:>14}",
        "collection", "distinct paths", "DMDV columns", "DMDV fan-out"
    );
    for r in run_guide_stats(scale) {
        println!(
            "{:<20} {:>15} {:>14} {:>14.1}",
            r.collection, r.distinct_paths, r.dmdv_columns, r.fan_out
        );
    }
}

fn fig3_fig4(n: usize, reps: usize, show_queries: bool, show_sizes: bool) {
    let (cells, sizes) = run_olap(n, reps);
    if show_queries {
        println!("\n== Figure 3: OLAP query time (ms), {n} purchaseOrder docs ==");
        print!("{:<6}", "query");
        for m in StorageMethod::ALL {
            print!(" {:>10}", m.label());
        }
        println!(" {:>8}", "rows");
        for q in 1..=9 {
            print!("Q{q:<5}");
            let mut rows = 0;
            for m in StorageMethod::ALL {
                let c = cells.iter().find(|c| c.query == q && c.method == m).unwrap();
                print!(" {:>10}", ms(c.time));
                rows = c.rows;
            }
            println!(" {rows:>8}");
        }
    }
    if show_sizes {
        println!("\n== Figure 4: storage size (bytes), {n} purchaseOrder docs ==");
        for (m, bytes) in sizes {
            println!("{:<6} {:>12}", m.label(), bytes);
        }
    }
}

fn fig5_fig6(n: usize, reps: usize, show5: bool, show6: bool) {
    let cells = run_nobench(n, reps);
    if show5 {
        println!("\n== Figure 5: NOBENCH query time (ms), {n} docs: TEXT vs OSON-IMC ==");
        println!("{:<6} {:>10} {:>10} {:>8} {:>8}", "query", "TEXT", "OSON-IMC", "speedup", "rows");
        for q in 1..=11 {
            let t = cells.iter().find(|c| c.query == q && c.mode == "TEXT").unwrap();
            let o = cells.iter().find(|c| c.query == q && c.mode == "OSON-IMC").unwrap();
            println!(
                "Q{:<5} {:>10} {:>10} {:>7.1}x {:>8}",
                q,
                ms(t.time),
                ms(o.time),
                t.time.as_secs_f64() / o.time.as_secs_f64(),
                t.rows
            );
        }
    }
    if show6 {
        println!("\n== Figure 6: Q6/Q7/Q10/Q11 (ms): OSON-IMC vs VC-IMC ==");
        println!("{:<6} {:>10} {:>10} {:>8}", "query", "OSON-IMC", "VC-IMC", "speedup");
        for q in [6, 7, 10, 11] {
            let o = cells.iter().find(|c| c.query == q && c.mode == "OSON-IMC").unwrap();
            let v = cells.iter().find(|c| c.query == q && c.mode == "VC-IMC").unwrap();
            println!(
                "Q{:<5} {:>10} {:>10} {:>7.1}x",
                q,
                ms(o.time),
                ms(v.time),
                o.time.as_secs_f64() / v.time.as_secs_f64()
            );
        }
    }
}

fn fig7(n: usize) {
    println!("\n== Figure 7: insertion time (ms), {n} homogeneous docs ==");
    let cells = run_insertion_modes(n);
    let base = cells[0].time.as_secs_f64();
    for c in &cells {
        println!(
            "{:<28} {:>10}  (+{:.1}% vs no-constraint)",
            c.mode,
            ms(c.time),
            (c.time.as_secs_f64() / base - 1.0) * 100.0
        );
    }
}

fn fig8(n: usize) {
    println!("\n== Figure 8: insertion time (ms) with DataGuide, {n} docs ==");
    let cells = run_homo_hetero(n);
    let homo = cells[0].time.as_secs_f64();
    for c in &cells {
        println!("{:<28} {:>10}  ({:.2}x homo)", c.mode, ms(c.time), c.time.as_secs_f64() / homo);
    }
}

fn fig9(n: usize) {
    println!("\n== Figure 9: transient DataGuide aggregation vs persistent index, {n} docs ==");
    for c in run_transient_vs_persistent(n) {
        println!("{:<28} {:>10}", c.label, ms(c.time));
    }
}

//! `fsdm-analyze`: lint SQL/JSON queries against generator-built
//! DataGuides (paper §3's query-validation use case, as a CLI).
//!
//! ```text
//! fsdm-analyze                              # lint both workloads
//! fsdm-analyze --workload nobench           # just the NOBENCH queries
//! fsdm-analyze --workload olap --scale 500  # OLAP at corpus scale 500
//! fsdm-analyze --sql queries.sql            # lint a file of statements
//! fsdm-analyze --json                       # machine-readable report
//! ```
//!
//! `--sql` lints the file's `;`-separated statements against the
//! selected workload's database (default NOBENCH), so table and column
//! names must match that schema. Exit status is non-zero when any
//! error-severity finding (FA001) remains — the CI budget.

use std::process::ExitCode;

use fsdm_bench::lint::{lint_nobench, lint_olap, lint_sql_text, LintReport};
use fsdm_bench::setup::{nobench_guided_db, olap_guided_db};

struct Options {
    workload: String,
    scale: usize,
    sql: Option<String>,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let usage = "usage: fsdm-analyze [--workload nobench|olap|both] [--scale N] \
                 [--sql FILE] [--json]";
    let mut opts = Options { workload: "both".to_string(), scale: 1000, sql: None, json: false };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--workload" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(w @ ("nobench" | "olap" | "both")) => opts.workload = w.to_string(),
                    _ => return Err(format!("--workload needs nobench|olap|both\n{usage}")),
                }
            }
            "--scale" => {
                i += 1;
                opts.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("--scale needs a number\n{usage}"))?;
            }
            "--sql" => {
                i += 1;
                let Some(f) = args.get(i) else {
                    return Err(format!("--sql needs a file\n{usage}"));
                };
                opts.sql = Some(f.clone());
            }
            "--help" | "-h" => return Err(usage.to_string()),
            other => return Err(format!("unknown argument {other}\n{usage}")),
        }
        i += 1;
    }
    Ok(opts)
}

fn build_report(opts: &Options) -> Result<LintReport, String> {
    if let Some(file) = &opts.sql {
        let source =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        // lint the file against the selected workload's schema
        let session = if opts.workload == "olap" {
            olap_guided_db(opts.scale)
        } else {
            nobench_guided_db(opts.scale)
        };
        return lint_sql_text(&session, opts.scale, &source).map_err(|e| e.to_string());
    }
    let mut report = match opts.workload.as_str() {
        "nobench" => lint_nobench(opts.scale).map_err(|e| e.to_string())?,
        "olap" => lint_olap(opts.scale).map_err(|e| e.to_string())?,
        _ => {
            let mut r = lint_nobench(opts.scale).map_err(|e| e.to_string())?;
            r.merge(lint_olap(opts.scale).map_err(|e| e.to_string())?);
            r
        }
    };
    report.scale = opts.scale;
    Ok(report)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let report = match build_report(&opts) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("fsdm-analyze: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! `bench`: micro-benchmark entry points that do not belong in the
//! paper-reproduction `repro` binary.
//!
//! ```text
//! bench concurrency [--scale small|N] [--threads a,b,c] [--reps N] [--smoke]
//!                   [--json FILE]
//! bench experiments [--scale small|N] [--threads a,b,c] [--reps N] [--json FILE]
//! bench imc [--scale small|N] [--reps N] [--smoke] [--json FILE]
//! bench trace-overhead [--scale N] [--smoke]
//! ```
//!
//! `concurrency` measures NOBENCH throughput vs thread count over one
//! shared corpus (see `fsdm_bench::concurrency`). `--smoke` is the CI
//! mode: it exits non-zero if the 4-thread full-set wall time is more
//! than 10% slower than 1-thread — parallelism must never cost a
//! workload meaningful time, even at small scales where it cannot win.
//! `--json FILE` additionally writes the run in the stable
//! `fsdm-bench-concurrency-v1` schema (`{git_rev, scale, threads,
//! per_query: {ms, qps}, speedup}`) so results accumulate into a perf
//! trajectory across revisions; `experiments` is the trajectory-first
//! alias (same run, JSON written by default to `BENCH_concurrency.json`).
//!
//! `imc` times the NOBENCH set twice over one corpus with the Q1–Q3
//! virtual columns materialized into the VC-IMC: once on the row
//! pipeline, once on the vectorized columnar pipeline (see
//! `fsdm_bench::imc`). `--smoke` is the CI mode: it exits non-zero if
//! the columnar Q1–Q3 wall time exceeds the row-path wall time —
//! vectorization must never lose on the queries its kernels cover.
//! `--json FILE` writes the stable `fsdm-bench-imc-v1` schema.
//!
//! `trace-overhead` verifies the tracing layer's disabled-mode contract:
//! the estimated cost of every span entry point executed by a NoBench
//! Q1–Q3 pass must stay within 2% of the measured wall time (see
//! `fsdm_bench::traceov`). `--smoke` exits non-zero on budget overrun.
//!
//! `chaos` runs seeded failpoint schedules over the combined NoBench +
//! OLAP workload at degree 1 and 4 (see `fsdm_bench::chaos`): every
//! armed query must come back baseline-identical or as a typed error,
//! and its post-fault clean rerun must be byte-identical. It exits
//! non-zero on any contract violation, and additionally gates the
//! *disarmed* governance overhead (see `fsdm_bench::governov`) at ≤ 2%
//! of the NoBench Q1–Q3 wall. `--smoke` is the reduced CI shape;
//! `--json FILE` writes the stable `fsdm-bench-chaos-v1` schema.

use fsdm_bench::{chaos, concurrency, governov, imc, traceov};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("concurrency") => run_concurrency(&args, None),
        Some("experiments") => {
            let json = flag_value(&args, "--json").unwrap_or("BENCH_concurrency.json");
            run_concurrency(&args, Some(json));
        }
        Some("imc") => run_imc(&args),
        Some("trace-overhead") => run_trace_overhead(&args),
        Some("chaos") => run_chaos(&args),
        other => {
            eprintln!(
                "unknown command {other:?}; supported: chaos, concurrency, experiments, imc, \
                 trace-overhead"
            );
            std::process::exit(2);
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(|s| s.as_str())
}

fn run_concurrency(args: &[String], default_json: Option<&str>) {
    let scale = match flag_value(args, "--scale") {
        Some("small") => 2_000,
        Some(s) => s.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--scale expects `small` or a document count, got {s}");
            std::process::exit(2);
        }),
        None => 20_000,
    };
    let threads: Vec<usize> = match flag_value(args, "--threads") {
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim().parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("--threads expects a comma-separated list, got {list}");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => vec![1, 2, 4],
    };
    let reps = flag_value(args, "--reps").and_then(|s| s.parse::<usize>().ok()).unwrap_or(3);
    let smoke = args.iter().any(|a| a == "--smoke");

    let rows = concurrency::run(scale, &threads, 1, reps);
    print!("{}", concurrency::render(scale, &rows));

    if let Some(path) = flag_value(args, "--json").or(default_json) {
        let json = concurrency::to_json(scale, &rows);
        match std::fs::write(path, &json) {
            Ok(()) => println!("trajectory written to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if smoke {
        let (Some(one), Some(four)) =
            (rows.iter().find(|r| r.threads == 1), rows.iter().find(|r| r.threads == 4))
        else {
            eprintln!("--smoke needs both 1 and 4 in --threads");
            std::process::exit(2);
        };
        let t1 = one.total().as_secs_f64();
        let t4 = four.total().as_secs_f64();
        // On a single-core box the 4-thread run cannot win — it pays pure
        // scheduler overhead — so the regression margin widens there; the
        // strict 10% gate only means something with real parallelism.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let tol = if cores >= 2 { 1.1 } else { 1.35 };
        if t4 > t1 * tol {
            eprintln!(
                "SMOKE FAIL: 4-thread NOBENCH wall {:.1}ms exceeds {tol}x the \
                 1-thread wall {:.1}ms ({cores} core(s))",
                t4 * 1e3,
                t1 * 1e3
            );
            std::process::exit(1);
        }
        println!(
            "smoke ok: 4-thread wall {:.1}ms <= {tol}x 1-thread wall {:.1}ms ({cores} core(s))",
            t4 * 1e3,
            t1 * 1e3
        );
    }
}

fn run_imc(args: &[String]) {
    let scale = match flag_value(args, "--scale") {
        Some("small") => 2_000,
        Some(s) => s.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--scale expects `small` or a document count, got {s}");
            std::process::exit(2);
        }),
        None => 20_000,
    };
    let reps = flag_value(args, "--reps").and_then(|s| s.parse::<usize>().ok()).unwrap_or(3);
    let smoke = args.iter().any(|a| a == "--smoke");

    let run = imc::run(scale, 1, reps);
    print!("{}", imc::render(&run));

    if let Some(path) = flag_value(args, "--json") {
        let json = imc::to_json(&run);
        match std::fs::write(path, &json) {
            Ok(()) => println!("trajectory written to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if smoke {
        let row = run.scan_heavy_row().as_secs_f64();
        let col = run.scan_heavy_columnar().as_secs_f64();
        if col > row {
            eprintln!(
                "SMOKE FAIL: columnar Q1-3 wall {:.1}ms exceeds the row-path wall {:.1}ms",
                col * 1e3,
                row * 1e3
            );
            std::process::exit(1);
        }
        println!(
            "smoke ok: columnar Q1-3 wall {:.1}ms <= row-path wall {:.1}ms",
            col * 1e3,
            row * 1e3
        );
    }
}

fn run_chaos(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut cfg = if smoke { chaos::ChaosConfig::smoke() } else { chaos::ChaosConfig::full() };
    if let Some(n) = flag_value(args, "--schedules").and_then(|s| s.parse::<usize>().ok()) {
        cfg.schedules = n;
    }
    if let Some(n) = flag_value(args, "--scale").and_then(|s| s.parse::<usize>().ok()) {
        cfg.scale = n;
        cfg.olap_scale = (n / 2).max(20);
    }
    if let Some(n) = flag_value(args, "--seed").and_then(|s| s.parse::<u64>().ok()) {
        cfg.seed = n;
    }

    let report = chaos::run(&cfg);
    print!("{}", report.render());
    if let Some(path) = flag_value(args, "--json") {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => println!("chaos report written to {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let violations = report.violations().len();
    if violations > 0 {
        eprintln!("CHAOS FAIL: {violations} contract violation(s); see the report above");
        std::process::exit(1);
    }

    // the other half of the contract: all of this must be ~free disarmed
    let o = governov::run(if smoke { 300 } else { 2_000 });
    print!("{}", o.render());
    if o.overhead_fraction() > 0.02 {
        eprintln!(
            "CHAOS FAIL: disarmed governance estimated at {:.3}% of Q1-Q3 wall (budget 2%)",
            o.overhead_fraction() * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "chaos ok: {} schedule(s), 0 violations, disarmed overhead within the 2% budget",
        report.outcomes.len()
    );
}

fn run_trace_overhead(args: &[String]) {
    let scale = flag_value(args, "--scale").and_then(|s| s.parse::<usize>().ok()).unwrap_or(2_000);
    let smoke = args.iter().any(|a| a == "--smoke");
    println!("== bench trace-overhead: NOBENCH Q1-Q3 (n = {scale}) ==");
    let o = traceov::run(scale);
    print!("{}", o.render());
    if o.overhead_fraction() > 0.02 {
        eprintln!(
            "TRACE-OVERHEAD FAIL: estimated {:.3}% of Q1-Q3 wall exceeds the 2% budget",
            o.overhead_fraction() * 100.0
        );
        if smoke {
            std::process::exit(1);
        }
    } else {
        println!("trace-overhead ok: within the 2% budget");
    }
}

//! `bench`: micro-benchmark entry points that do not belong in the
//! paper-reproduction `repro` binary.
//!
//! ```text
//! bench concurrency [--scale small|N] [--threads a,b,c] [--reps N] [--smoke]
//! ```
//!
//! `concurrency` measures NOBENCH throughput vs thread count over one
//! shared corpus (see `fsdm_bench::concurrency`). `--smoke` is the CI
//! mode: it exits non-zero if the 4-thread full-set wall time is more
//! than 10% slower than 1-thread — parallelism must never cost a
//! workload meaningful time, even at small scales where it cannot win.

use fsdm_bench::concurrency;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("concurrency") => run_concurrency(&args),
        other => {
            eprintln!("unknown command {other:?}; supported: concurrency");
            std::process::exit(2);
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(|s| s.as_str())
}

fn run_concurrency(args: &[String]) {
    let scale = match flag_value(args, "--scale") {
        Some("small") => 2_000,
        Some(s) => s.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--scale expects `small` or a document count, got {s}");
            std::process::exit(2);
        }),
        None => 20_000,
    };
    let threads: Vec<usize> = match flag_value(args, "--threads") {
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim().parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("--threads expects a comma-separated list, got {list}");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => vec![1, 2, 4],
    };
    let reps = flag_value(args, "--reps").and_then(|s| s.parse::<usize>().ok()).unwrap_or(3);
    let smoke = args.iter().any(|a| a == "--smoke");

    let rows = concurrency::run(scale, &threads, 1, reps);
    print!("{}", concurrency::render(scale, &rows));

    if smoke {
        let (Some(one), Some(four)) =
            (rows.iter().find(|r| r.threads == 1), rows.iter().find(|r| r.threads == 4))
        else {
            eprintln!("--smoke needs both 1 and 4 in --threads");
            std::process::exit(2);
        };
        let t1 = one.total().as_secs_f64();
        let t4 = four.total().as_secs_f64();
        if t4 > t1 * 1.1 {
            eprintln!(
                "SMOKE FAIL: 4-thread NOBENCH wall {:.1}ms exceeds 1.1x the \
                 1-thread wall {:.1}ms",
                t4 * 1e3,
                t1 * 1e3
            );
            std::process::exit(1);
        }
        println!(
            "smoke ok: 4-thread wall {:.1}ms <= 1.1x 1-thread wall {:.1}ms",
            t4 * 1e3,
            t1 * 1e3
        );
    }
}

//! `bench chaos` disarmed-overhead gate: quantify what inactive
//! governance and fault injection cost.
//!
//! The governance contract mirrors the tracing one: with no failpoint
//! armed and no limit set, the hot-path primitives are a handful of
//! arithmetic instructions — a disarmed [`fsdm_fault::fire`] is one
//! relaxed load, a [`QueryGovernor::check_rows`] below its interval is
//! an add and a compare, and a morsel-boundary
//! [`QueryGovernor::checkpoint`] is a load plus (only when a deadline is
//! set) a clock read. This runner verifies the contract end-to-end on
//! the scan-heavy NoBench subset (Q1–Q3, the bench-smoke workload):
//!
//! 1. measure the per-call cost of the per-row pair (disarmed `fire` +
//!    below-interval `check_rows`) and of the per-morsel pair (disarmed
//!    `fire` + `checkpoint` with a far deadline armed) in tight loops;
//! 2. run Q1–Q3 once under the profiler to count the morsels those
//!    queries dispatch; every scanned row pays the per-row pair and
//!    every morsel the per-morsel pair;
//! 3. multiply and compare against the measured disarmed wall time.
//!
//! The budget is ≤ 2% of the Q1–Q3 wall, the same smoke noise floor the
//! tracing layer is held to. Charging *every* row the full measured
//! pair cost is deliberately pessimistic — the real loops overlap these
//! loads with JSON decoding — so a pass here is conservative.
//!
//! [`QueryGovernor::check_rows`]: fsdm_store::QueryGovernor::check_rows
//! [`QueryGovernor::checkpoint`]: fsdm_store::QueryGovernor::checkpoint

use std::time::Instant;

use fsdm_store::QueryGovernor;

use crate::concurrency::nobench_plans;
use crate::setup::nobench_db;

/// Result of one disarmed-governance overhead measurement.
pub struct GovernOverhead {
    /// Measured cost of one per-row site (disarmed fire + row check), ns.
    pub per_row_ns: f64,
    /// Measured cost of one per-morsel site (disarmed fire + deadline
    /// checkpoint), ns.
    pub per_morsel_ns: f64,
    /// Rows the Q1–Q3 pass scans (each pays the per-row pair).
    pub row_sites: u64,
    /// Morsels the Q1–Q3 pass dispatches (each pays the per-morsel pair).
    pub morsel_sites: u64,
    /// Measured disarmed Q1–Q3 wall time, ns.
    pub wall_ns: u64,
}

impl GovernOverhead {
    /// Estimated disarmed-mode overhead as a fraction of the Q1–Q3 wall.
    pub fn overhead_fraction(&self) -> f64 {
        (self.per_row_ns * self.row_sites as f64 + self.per_morsel_ns * self.morsel_sites as f64)
            / (self.wall_ns as f64).max(1.0)
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        format!(
            "disarmed per-row site (fire + row check): {:.2} ns/call x {} rows\n\
             disarmed per-morsel site (fire + checkpoint): {:.2} ns/call x {} morsels\n\
             Q1-Q3 wall (disarmed): {:.2} ms\n\
             estimated disarmed governance overhead: {:.3}% of wall (budget 2%)\n",
            self.per_row_ns,
            self.row_sites,
            self.per_morsel_ns,
            self.morsel_sites,
            self.wall_ns as f64 / 1e6,
            self.overhead_fraction() * 100.0
        )
    }
}

/// Measure the disarmed-governance contract over `scale` NoBench docs.
pub fn run(scale: usize) -> GovernOverhead {
    let scope = fsdm_fault::FailScope::disarmed();
    let mut session = nobench_db(scale);
    let plans: Vec<_> = nobench_plans(&session, scale)
        .into_iter()
        .filter(|(label, _)| matches!(label.as_str(), "Q1" | "Q2" | "Q3"))
        .collect();
    session.db.set_parallelism(1); // serial: the per-call estimate has no overlap to hide in

    const CALLS: u32 = 2_000_000;
    // 1a. per-row pair: disarmed fire + below-interval row check
    let per_row_ns = {
        let g = QueryGovernor::unlimited();
        let mut acc = 0usize;
        let t = Instant::now();
        for _ in 0..CALLS {
            let fired = fsdm_fault::fire(fsdm_fault::catalog::FP_EXPR_EVAL);
            std::hint::black_box(&fired);
            let checked = g.check_rows(&mut acc, 1);
            std::hint::black_box(&checked);
            // reset keeps every iteration on the cheap below-interval arm
            acc = 0;
        }
        t.elapsed().as_nanos() as f64 / f64::from(CALLS)
    };
    // 1b. per-morsel pair: disarmed fire + checkpoint with a deadline
    // armed, the worst configured case (each checkpoint reads the clock)
    let per_morsel_ns = {
        let g = QueryGovernor::for_statement(
            std::sync::Arc::new(fsdm_store::CancelToken::new()),
            Some(3_600_000),
            Some(u64::MAX),
        );
        let t = Instant::now();
        for _ in 0..CALLS {
            let fired = fsdm_fault::fire(fsdm_fault::catalog::FP_EXEC_MORSEL);
            std::hint::black_box(&fired);
            let checked = g.checkpoint();
            std::hint::black_box(&checked);
        }
        t.elapsed().as_nanos() as f64 / f64::from(CALLS)
    };
    assert_eq!(fsdm_fault::total_hits(), 0, "a disarmed run must never consult the registry");

    // 2. sites one Q1–Q3 pass executes: every query scans the whole
    // corpus (per-row pair), the profiler counts the morsels
    let morsel_sites: u64 = plans
        .iter()
        .map(|(_, plan)| {
            let (_, profile) = session.db.execute_profiled(plan).expect("NOBENCH query profiles");
            profile.total_morsels() as u64
        })
        .sum();
    let row_sites = (plans.len() * scale) as u64;

    // 3. wall time of the same pass, disarmed (best of 3, one warm-up)
    let wall = crate::time_best(
        || {
            for (_, plan) in &plans {
                session.db.execute(plan).expect("NOBENCH query executes");
            }
        },
        1,
        3,
    );
    drop(scope);

    GovernOverhead {
        per_row_ns,
        per_morsel_ns,
        row_sites,
        morsel_sites,
        wall_ns: wall.as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_stays_inside_the_smoke_budget() {
        let o = run(300);
        assert_eq!(o.row_sites, 900, "3 queries x 300 scanned rows");
        assert!(o.morsel_sites > 0, "a profiled pass must see morsels");
        assert!(o.wall_ns > 0);
        assert!(
            o.overhead_fraction() <= 0.02,
            "disarmed governance estimated at {:.3}% of Q1-Q3 wall (budget 2%):\n{}",
            o.overhead_fraction() * 100.0,
            o.render()
        );
    }
}

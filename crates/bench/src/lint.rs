//! The workload lint harness behind the `fsdm-analyze` binary and the
//! CI gate.
//!
//! Each workload's database is rebuilt with DataGuide maintenance on
//! (the benchmark tables skip it), every query the paper issues against
//! it is run through the semantic analyzer, and the findings are
//! aggregated with severity totals. The OLAP queries go through views,
//! so the JSON paths buried in the view definitions are linted against
//! the `po` guide as well. CI fails the build on any error-severity
//! finding.

use fsdm_analyze::{analyze_path, AnalyzerConfig, Severity};
use fsdm_sql::{Diagnostic, Session, SqlError};
use fsdm_sqljson::{parse_path, JsonPath};
use fsdm_workloads::nobench;

use crate::setup::{nobench_guided_db, olap_guided_db, olap_queries, po_dmdv_def};

/// One linted statement (or view-definition path) and its findings.
#[derive(Debug, Clone)]
pub struct LintItem {
    /// Stable label, e.g. `nobench:Q3` or `view:po_mv.reference`.
    pub label: String,
    /// The SQL or path text that was analyzed.
    pub text: String,
    /// Analyzer findings, most severe first in rendered output.
    pub diagnostics: Vec<Diagnostic>,
}

/// A full lint run over one or more workloads.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Corpus scale the DataGuides were built at.
    pub scale: usize,
    /// Every linted statement, in workload order.
    pub items: Vec<LintItem>,
}

impl LintReport {
    fn count(&self, sev: Severity) -> usize {
        self.items.iter().flat_map(|i| &i.diagnostics).filter(|d| d.severity == sev).count()
    }

    /// Findings that fail the CI budget.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Advisory warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Advisory info-severity findings.
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    /// Append another report's items (the `--workload both` case).
    pub fn merge(&mut self, other: LintReport) {
        self.items.extend(other.items);
    }

    /// Human-readable report: one block per statement with findings,
    /// then a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for item in &self.items {
            if item.diagnostics.is_empty() {
                continue;
            }
            out.push_str(&format!("{}: {}\n", item.label, item.text));
            for line in fsdm_analyze::render_text(&item.diagnostics).lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "fsdm-analyze: {} statement(s) at scale {}: {} error(s), {} warning(s), {} info(s)\n",
            self.items.len(),
            self.scale,
            self.errors(),
            self.warnings(),
            self.infos()
        ));
        out
    }

    /// Machine-readable report (the `--json` / CI shape).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str("  \"statements\": [\n");
        for (i, item) in self.items.iter().enumerate() {
            let sep = if i + 1 == self.items.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"text\": \"{}\", \"diagnostics\": {}}}{sep}\n",
                json_escape(&item.label),
                json_escape(&item.text),
                fsdm_analyze::render_json(&item.diagnostics)
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"errors\": {}, \"warnings\": {}, \"infos\": {}\n}}",
            self.errors(),
            self.warnings(),
            self.infos()
        ));
        out
    }
}

/// Lint the NOBENCH Q1–Q10 SQL against a guide built from the same
/// deterministic corpus the benchmarks load.
pub fn lint_nobench(n: usize) -> Result<LintReport, SqlError> {
    let session = nobench_guided_db(n);
    let mut items = Vec::new();
    for q in 1..=10 {
        let sql = nobench::query_sql(q, n);
        let diagnostics = session.analyze(&sql)?;
        items.push(LintItem { label: format!("nobench:Q{q}"), text: sql, diagnostics });
    }
    Ok(LintReport { scale: n, items })
}

/// Lint the Table 13 OLAP SQL, then the JSON paths inside the `po_mv` /
/// `po_item_dmdv` view definitions (the queries themselves only touch
/// views, so the paths are where the guide has something to say).
pub fn lint_olap(n: usize) -> Result<LintReport, SqlError> {
    let session = olap_guided_db(n);
    let mut items = Vec::new();
    for q in olap_queries(n) {
        let diagnostics = session.analyze(&q.sql)?;
        items.push(LintItem { label: format!("olap:Q{}", q.id), text: q.sql, diagnostics });
    }
    let Some(t) = session.db.table("po") else {
        return Ok(LintReport { scale: n, items });
    };
    let cfg = AnalyzerConfig::default();
    for (label, text) in view_paths()? {
        let path = parse_jp(&text)?;
        let diagnostics = analyze_path(&t.dataguide, &path, &cfg);
        items.push(LintItem { label, text, diagnostics });
    }
    Ok(LintReport { scale: n, items })
}

/// Lint `;`-separated SQL statements against an existing session (the
/// `--sql FILE` mode). Line comments (`--`) are stripped.
pub fn lint_sql_text(
    session: &Session,
    scale: usize,
    source: &str,
) -> Result<LintReport, SqlError> {
    let stripped: String = source
        .lines()
        .map(|l| l.split_once("--").map(|(code, _)| code).unwrap_or(l))
        .collect::<Vec<_>>()
        .join("\n");
    let mut items = Vec::new();
    for (i, stmt) in stripped.split(';').map(str::trim).filter(|s| !s.is_empty()).enumerate() {
        let diagnostics = session.analyze(stmt)?;
        items.push(LintItem {
            label: format!("sql:{}", i + 1),
            text: stmt.to_string(),
            diagnostics,
        });
    }
    Ok(LintReport { scale, items })
}

/// Every JSON path a generated view evaluates, with the nested-column
/// paths composed onto their row paths.
fn view_paths() -> Result<Vec<(String, String)>, SqlError> {
    let mut out = Vec::new();
    for f in ["reference", "requestor", "costcenter", "podate"] {
        out.push((format!("view:po_mv.{f}"), format!("$.purchaseOrder.{f}")));
    }
    let def = po_dmdv_def();
    let row = def.row_path.text();
    for c in &def.columns {
        out.push((format!("view:po_item_dmdv.{}", c.name), compose(row, c.path.text())));
    }
    for nd in &def.nested {
        let nrow = compose(row, nd.path.text());
        for c in &nd.columns {
            out.push((format!("view:po_item_dmdv.{}", c.name), compose(&nrow, c.path.text())));
        }
    }
    Ok(out)
}

/// `$.purchaseOrder` + `$.items[*]` → `$.purchaseOrder.items[*]`.
fn compose(row: &str, sub: &str) -> String {
    format!("{}{}", row, sub.strip_prefix('$').unwrap_or(sub))
}

fn parse_jp(text: &str) -> Result<JsonPath, SqlError> {
    parse_path(text).map_err(|e| SqlError::new(format!("bad view path '{text}': {e}")))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nobench_lint_is_error_free_and_sees_sparse_paths() {
        let report = lint_nobench(300).unwrap();
        assert_eq!(report.items.len(), 10);
        assert_eq!(report.errors(), 0, "{}", report.render_text());
        // the sparse_XXX paths sit at ~1% frequency: FA005 warnings
        assert!(report.warnings() > 0, "{}", report.render_text());
        // TEXT storage makes filtered paths unstreamable: FA006 infos
        assert!(report.render_text().contains("FA00"), "{}", report.render_text());
    }

    #[test]
    fn olap_lint_is_error_free_and_covers_view_paths() {
        let report = lint_olap(200).unwrap();
        assert_eq!(report.errors(), 0, "{}", report.render_text());
        let labels: Vec<&str> = report.items.iter().map(|i| i.label.as_str()).collect();
        assert!(labels.contains(&"olap:Q1"), "{labels:?}");
        assert!(labels.contains(&"view:po_mv.reference"), "{labels:?}");
        assert!(labels.contains(&"view:po_item_dmdv.partno"), "{labels:?}");
        let partno = report.items.iter().find(|i| i.label == "view:po_item_dmdv.partno").unwrap();
        assert_eq!(partno.text, "$.purchaseOrder.items[*].partno");
    }

    #[test]
    fn sql_file_mode_flags_unknown_paths() {
        let session = nobench_guided_db(100);
        let src = "-- a stale query\nselect did from nobench \
                   where json_exists(jdoc, '$.persno');\n\
                   select json_value(jdoc, '$.str1') from nobench;";
        let report = lint_sql_text(&session, 100, src).unwrap();
        assert_eq!(report.items.len(), 2);
        assert_eq!(report.errors(), 1, "{}", report.render_text());
        assert!(report.items[0]
            .diagnostics
            .iter()
            .any(|d| d.code == fsdm_analyze::Code::UnknownPath));
        let json = report.render_json();
        assert!(json.contains("\"errors\": 1"), "{json}");
        assert!(json.contains("\"label\": \"sql:1\""), "{json}");
    }

    #[test]
    fn merged_reports_sum_severities() {
        let mut a = lint_nobench(120).unwrap();
        let b = lint_olap(120).unwrap();
        let (we, ww) = (a.errors() + b.errors(), a.warnings() + b.warnings());
        a.merge(b);
        assert_eq!(a.errors(), we);
        assert_eq!(a.warnings(), ww);
        assert!(a.render_text().contains("statement(s)"));
    }
}

//! `bench chaos`: seeded failpoint schedules over the full workload.
//!
//! The governance contract (DESIGN.md §15) is that a fault injected
//! anywhere in the executor degrades into exactly one of two outcomes:
//! the statement still returns its baseline-identical result, or it
//! returns a *typed* [`StoreError`] — never an unhandled panic, never a
//! hang, never a wrong answer. This runner proves the contract by
//! enumeration: it draws hundreds of seeded schedules, each arming one
//! cataloged failpoint in one mode against one query of the combined
//! workload (NoBench Q1–Q11 plus the §6.3 OLAP Table 13 set) at degree
//! 1 or 4, and classifies every run.
//!
//! Determinism boundaries, stated precisely:
//!
//! - the *schedule sequence* is a pure function of the seed
//!   ([`plan_schedules`]);
//! - whether a `prob`/`after` schedule injects before the pipeline
//!   finishes can race at degree 4 (workers reach armed sites in
//!   scheduler order), so a schedule's verdict may flip between the two
//!   *acceptable* outcomes across runs — but a violation is a violation
//!   under every interleaving;
//! - after every schedule the registry is reset and the query is re-run
//!   clean; the rerun must be byte-identical to the disarmed baseline,
//!   proving the fault left no residue in the `Database`.
//!
//! Panic mode is only drawn for [`PANIC_SAFE`] points — the ones that
//! fire as the first statement of a morsel closure, inside
//! `run_morsels`' panic boundary. The serial fires (`exec.sort.permute`
//! on the coordinating thread, `expr.eval` / `vector.batch` at
//! call sites that may sit outside a pipeline) get the error-family
//! modes, which exercise the same unwind-free cleanup paths.
//!
//! Hangs are broken by a generous statement deadline (the watchdog): a
//! run that trips it is classified as a violation, not as an acceptable
//! typed error — at 30 s against millisecond queries, a deadline kill
//! means the fault wedged the pipeline.

use std::time::Instant;

use fsdm_fault::{catalog, FailMode, FailScope};
use fsdm_sql::Session;
use fsdm_sqljson::Datum;
use fsdm_store::{ErrorKind, Query, QueryResult, StoreError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::concurrency::{git_rev, nobench_plans};
use crate::setup::{bind_datum, nobench_db, olap_db, olap_queries, StorageMethod};

/// Failpoints whose `fire` site is the first statement of a morsel
/// closure — always inside `run_morsels`' catch boundary, so an injected
/// panic is isolated into a typed `WorkerPanic` error. Panic mode is
/// only ever scheduled against these.
pub const PANIC_SAFE: [&str; 4] = [
    catalog::FP_EXEC_MORSEL,
    catalog::FP_EXEC_JOIN_BUILD,
    catalog::FP_EXEC_GROUPBY_PARTIAL,
    catalog::FP_EXEC_JSONTABLE_ROW,
];

/// The degrees every chaos run covers: the serial inline path and the
/// scoped-worker path.
pub const DEGREES: [usize; 2] = [1, 4];

/// Chaos run parameters.
pub struct ChaosConfig {
    /// NoBench corpus size.
    pub scale: usize,
    /// OLAP purchaseOrder corpus size.
    pub olap_scale: usize,
    /// Number of seeded schedules to draw and run.
    pub schedules: usize,
    /// Seed for the schedule sequence.
    pub seed: u64,
    /// Watchdog statement timeout (ms); tripping it is a violation.
    pub watchdog_ms: u64,
}

impl ChaosConfig {
    /// The full acceptance run: ≥ 500 schedules.
    pub fn full() -> ChaosConfig {
        ChaosConfig { scale: 1_000, olap_scale: 400, schedules: 500, seed: 42, watchdog_ms: 30_000 }
    }

    /// The CI smoke run: same shape, reduced draw count and corpus.
    pub fn smoke() -> ChaosConfig {
        ChaosConfig { scale: 240, olap_scale: 120, schedules: 60, seed: 42, watchdog_ms: 30_000 }
    }
}

/// One drawn schedule: which query, at which degree, with which
/// failpoint armed in which mode.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Index into the combined query list.
    pub query: usize,
    /// Executor degree for this run.
    pub degree: usize,
    /// Cataloged failpoint name.
    pub point: &'static str,
    /// Armed mode.
    pub mode: FailMode,
}

/// How one schedule's run was classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The armed run returned the baseline-identical bytes.
    Identical,
    /// The armed run returned a typed [`StoreError`].
    TypedError,
    /// Contract breach: baseline divergence, watchdog trip, or a dirty
    /// post-fault rerun.
    Violation,
}

impl Verdict {
    /// Stable label used in both renderings.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Identical => "identical",
            Verdict::TypedError => "typed-error",
            Verdict::Violation => "violation",
        }
    }
}

/// One schedule's classified outcome.
#[derive(Debug)]
pub struct Outcome {
    /// Position in the schedule sequence.
    pub id: usize,
    /// Display label of the query (`Q1` … `Q11`, `T13-1` … `T13-9`).
    pub query: String,
    /// Executor degree.
    pub degree: usize,
    /// Armed failpoint.
    pub point: &'static str,
    /// Armed mode, rendered in `FSDM_FAILPOINTS` syntax.
    pub mode: String,
    /// Classification.
    pub verdict: Verdict,
    /// Error message for typed errors, breach description for
    /// violations, empty for identical runs.
    pub detail: String,
}

/// Everything one chaos run produced.
pub struct ChaosReport {
    /// NoBench corpus size.
    pub scale: usize,
    /// OLAP corpus size.
    pub olap_scale: usize,
    /// Schedule seed.
    pub seed: u64,
    /// Number of distinct queries in the combined workload.
    pub queries: usize,
    /// Classified outcomes, in schedule order.
    pub outcomes: Vec<Outcome>,
    /// Wall time of the whole run (baselines included), ns.
    pub wall_ns: u64,
}

impl ChaosReport {
    /// Outcome count with the given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.outcomes.iter().filter(|o| o.verdict == v).count()
    }

    /// The contract breaches, if any. CI gates on this being empty.
    pub fn violations(&self) -> Vec<&Outcome> {
        self.outcomes.iter().filter(|o| o.verdict == Verdict::Violation).collect()
    }

    /// Human-readable summary plus every violation in full.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== bench chaos: {} schedule(s), seed {} (nobench n = {}, olap n = {}) ==",
            self.outcomes.len(),
            self.seed,
            self.scale,
            self.olap_scale
        );
        let _ = writeln!(
            out,
            "{:<12} {}\n{:<12} {}\n{:<12} {}",
            "identical",
            self.count(Verdict::Identical),
            "typed-error",
            self.count(Verdict::TypedError),
            "violations",
            self.count(Verdict::Violation),
        );
        for o in self.violations() {
            let _ = writeln!(
                out,
                "VIOLATION #{}: {} degree {} {}={}: {}",
                o.id, o.query, o.degree, o.point, o.mode, o.detail
            );
        }
        let _ = writeln!(out, "wall: {:.1} ms", self.wall_ns as f64 / 1e6);
        out
    }

    /// Machine-readable rendering, schema `fsdm-bench-chaos-v1`:
    ///
    /// ```json
    /// {"schema":"fsdm-bench-chaos-v1","git_rev":"abc1234","seed":42,
    ///  "scale":1000,"olap_scale":400,"queries":20,"schedules":500,
    ///  "verdicts":{"identical":…,"typed_error":…,"violation":0},
    ///  "outcomes":[{"id":0,"query":"Q4","degree":4,"point":"exec.morsel",
    ///               "mode":"error","verdict":"typed-error","detail":"…"}]}
    /// ```
    ///
    /// Stable like the other bench schemas: additions may append fields,
    /// never rename or re-type existing ones.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"schema\":\"fsdm-bench-chaos-v1\"");
        let _ = write!(
            out,
            ",\"git_rev\":\"{}\",\"seed\":{},\"scale\":{},\"olap_scale\":{},\
             \"queries\":{},\"schedules\":{}",
            git_rev(),
            self.seed,
            self.scale,
            self.olap_scale,
            self.queries,
            self.outcomes.len()
        );
        let _ = write!(
            out,
            ",\"verdicts\":{{\"identical\":{},\"typed_error\":{},\"violation\":{}}}",
            self.count(Verdict::Identical),
            self.count(Verdict::TypedError),
            self.count(Verdict::Violation)
        );
        out.push_str(",\"outcomes\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"query\":{},\"degree\":{},\"point\":{},\"mode\":{},\
                 \"verdict\":\"{}\",\"detail\":{}}}",
                o.id,
                json_str(&o.query),
                o.degree,
                json_str(o.point),
                json_str(&o.mode),
                o.verdict.label(),
                json_str(&o.detail)
            );
        }
        let _ = write!(out, "],\"wall_ms\":{:.1}}}", self.wall_ns as f64 / 1e6);
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::from("\"");
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a mode in the `FSDM_FAILPOINTS` syntax [`fsdm_fault`] parses.
pub fn mode_label(mode: FailMode) -> String {
    match mode {
        FailMode::Off => "off".to_string(),
        FailMode::Error => "error".to_string(),
        FailMode::Panic => "panic".to_string(),
        FailMode::Delay(ms) => format!("delay({ms})"),
        FailMode::ErrorAfter(n) => format!("after({n})"),
        FailMode::ErrorWithProbability(p, seed) => format!("prob({p:.2},{seed})"),
    }
}

/// Draw `count` schedules from `seed` over `queries` query slots — a
/// pure function, so a seed pins the whole sequence. Panic mode is
/// remapped to error for points outside [`PANIC_SAFE`].
pub fn plan_schedules(seed: u64, count: usize, queries: usize) -> Vec<Schedule> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let query = rng.gen_range(0..queries.max(1));
            let degree = DEGREES[rng.gen_range(0..DEGREES.len())];
            let point = catalog::ALL[rng.gen_range(0..catalog::ALL.len())];
            let mode = match rng.gen_range(0..5u32) {
                0 => FailMode::Error,
                1 if PANIC_SAFE.contains(&point) => FailMode::Panic,
                1 => FailMode::Error,
                2 => FailMode::Delay(1),
                3 => FailMode::ErrorAfter(rng.gen_range(1..48u64)),
                _ => {
                    let p = 0.05 + 0.9 * rng.gen_range(0.0f64..1.0);
                    FailMode::ErrorWithProbability(p, rng.next_seed())
                }
            };
            Schedule { query, degree, point, mode }
        })
        .collect()
}

/// A fresh sub-seed for the probability mode's per-point generator.
trait NextSeed {
    fn next_seed(&mut self) -> u64;
}

impl NextSeed for StdRng {
    fn next_seed(&mut self) -> u64 {
        self.gen_range(0..u64::MAX)
    }
}

/// The combined workload: NoBench Q1–Q11 over a text-storage corpus and
/// the Table 13 OLAP set over an OSON corpus, as `(label, session
/// index, plan)` triples plus the two owning sessions.
fn build_workload(cfg: &ChaosConfig) -> (Vec<Session>, Vec<(String, usize, Query)>) {
    let mut nb = nobench_db(cfg.scale);
    nb.set_statement_timeout(Some(cfg.watchdog_ms));
    let mut queries: Vec<(String, usize, Query)> =
        nobench_plans(&nb, cfg.scale).into_iter().map(|(label, plan)| (label, 0, plan)).collect();
    let mut ol = olap_db(StorageMethod::Oson, cfg.olap_scale);
    ol.set_statement_timeout(Some(cfg.watchdog_ms));
    for q in olap_queries(cfg.olap_scale) {
        let binds: Vec<Datum> = q.binds.iter().map(|b| bind_datum(b)).collect();
        let plan = ol.plan(&q.sql, &binds).expect("Table 13 query plans");
        queries.push((format!("T13-{}", q.id), 1, plan));
    }
    (vec![nb, ol], queries)
}

/// Classify one armed run against its baseline.
fn classify(run: Result<QueryResult, StoreError>, baseline: &str) -> (Verdict, String) {
    match run {
        Ok(r) => {
            if format!("{r:?}") == baseline {
                (Verdict::Identical, String::new())
            } else {
                (Verdict::Violation, "armed run diverged from the disarmed baseline".to_string())
            }
        }
        Err(e) if e.kind == ErrorKind::DeadlineExceeded => {
            (Verdict::Violation, format!("watchdog deadline tripped: {e}"))
        }
        Err(e) => (Verdict::TypedError, e.to_string()),
    }
}

/// Run `cfg.schedules` seeded schedules and classify every one.
///
/// Serializes against every other failpoint user in the process via the
/// [`FailScope`] lock, computes disarmed per-query baselines (verified
/// identical at both degrees before any fault is armed), then runs each
/// schedule: arm → execute → classify → reset → clean rerun, where the
/// rerun must reproduce the baseline bytes exactly.
pub fn run(cfg: &ChaosConfig) -> ChaosReport {
    fsdm_fault::silence_failpoint_panics();
    let scope = FailScope::disarmed();
    let started = Instant::now();
    let (mut sessions, queries) = build_workload(cfg);

    // disarmed baselines at degree 1, cross-checked at every degree —
    // byte-identity across degrees must hold before chaos means anything
    let baselines: Vec<String> = queries
        .iter()
        .map(|(label, s, plan)| {
            sessions[*s].db.set_parallelism(1);
            let r = sessions[*s].db.execute(plan).expect("disarmed baseline executes");
            let bytes = format!("{r:?}");
            for &d in &DEGREES[1..] {
                sessions[*s].db.set_parallelism(d);
                let rd = sessions[*s].db.execute(plan).expect("disarmed baseline executes");
                assert_eq!(format!("{rd:?}"), bytes, "{label}: disarmed degree {d} diverged");
            }
            bytes
        })
        .collect();

    let mut outcomes = Vec::with_capacity(cfg.schedules);
    for (id, sched) in
        plan_schedules(cfg.seed, cfg.schedules, queries.len()).into_iter().enumerate()
    {
        let (label, s, plan) = &queries[sched.query];
        let baseline = &baselines[sched.query];
        sessions[*s].db.set_parallelism(sched.degree);
        scope.also(sched.point, sched.mode);
        let armed = sessions[*s].db.execute(plan);
        fsdm_fault::reset();
        let (mut verdict, mut detail) = classify(armed, baseline);
        // post-fault residue check: a clean rerun must be byte-identical
        let rerun = sessions[*s].db.execute(plan);
        match rerun {
            Ok(r) if format!("{r:?}") == *baseline => {}
            Ok(_) => {
                verdict = Verdict::Violation;
                detail = "post-fault clean rerun diverged from the baseline".to_string();
            }
            Err(e) => {
                verdict = Verdict::Violation;
                detail = format!("post-fault clean rerun failed: {e}");
            }
        }
        outcomes.push(Outcome {
            id,
            query: label.clone(),
            degree: sched.degree,
            point: sched.point,
            mode: mode_label(sched.mode),
            verdict,
            detail,
        });
    }
    ChaosReport {
        scale: cfg.scale,
        olap_scale: cfg.olap_scale,
        seed: cfg.seed,
        queries: queries.len(),
        outcomes,
        wall_ns: started.elapsed().as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_seed_deterministic_and_panic_safe() {
        let a = plan_schedules(7, 200, 20);
        let b = plan_schedules(7, 200, 20);
        assert_eq!(a, b, "a seed must pin the whole schedule sequence");
        assert_ne!(a, plan_schedules(8, 200, 20), "distinct seeds must diverge");
        let mut kinds = [0usize; 5];
        for s in &a {
            assert!(s.query < 20);
            assert!(DEGREES.contains(&s.degree), "degree {}", s.degree);
            assert!(catalog::ALL.contains(&s.point), "{}", s.point);
            match s.mode {
                FailMode::Error => kinds[0] += 1,
                FailMode::Panic => {
                    kinds[1] += 1;
                    assert!(
                        PANIC_SAFE.contains(&s.point),
                        "panic mode drawn for serial-fire point {}",
                        s.point
                    );
                }
                FailMode::Delay(_) => kinds[2] += 1,
                FailMode::ErrorAfter(n) => {
                    kinds[3] += 1;
                    assert!((1..48).contains(&n));
                }
                FailMode::ErrorWithProbability(p, _) => {
                    kinds[4] += 1;
                    assert!((0.05..=0.95).contains(&p), "p = {p}");
                }
                FailMode::Off => panic!("off mode must never be scheduled"),
            }
        }
        assert!(kinds.iter().all(|&k| k > 0), "all five mode kinds drawn: {kinds:?}");
    }

    #[test]
    fn a_disarmed_run_produces_clean_baselines() {
        // schedules = 0: exercises workload construction and the
        // cross-degree baseline identity assertions without arming
        // anything (armed paths run in the serialized tier-1 suite and
        // the CI smoke, where no concurrent test executes queries)
        let cfg =
            ChaosConfig { scale: 120, olap_scale: 60, schedules: 0, seed: 1, watchdog_ms: 30_000 };
        let report = run(&cfg);
        assert_eq!(report.queries, 20, "Q1-Q11 plus T13-1..9");
        assert!(report.outcomes.is_empty());
        assert!(report.violations().is_empty());
    }

    #[test]
    fn report_json_follows_the_stable_schema() {
        let report = ChaosReport {
            scale: 100,
            olap_scale: 50,
            seed: 9,
            queries: 20,
            outcomes: vec![
                Outcome {
                    id: 0,
                    query: "Q4".to_string(),
                    degree: 4,
                    point: catalog::FP_EXEC_GROUPBY_PARTIAL,
                    mode: "panic".to_string(),
                    verdict: Verdict::TypedError,
                    detail: "worker panicked at morsel 0: failpoint injected".to_string(),
                },
                Outcome {
                    id: 1,
                    query: "T13-3".to_string(),
                    degree: 1,
                    point: catalog::FP_EXPR_EVAL,
                    mode: "delay(1)".to_string(),
                    verdict: Verdict::Identical,
                    detail: String::new(),
                },
            ],
            wall_ns: 1_500_000,
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"fsdm-bench-chaos-v1\""), "{json}");
        assert!(json.contains("\"verdicts\":{\"identical\":1,\"typed_error\":1,\"violation\":0"));
        assert!(json.contains("\"point\":\"exec.groupby.partial\""), "{json}");
        fsdm_json::parse(&json).expect("chaos JSON parses");
        let text = report.render();
        assert!(text.contains("typed-error  1"), "{text}");
        assert!(!text.contains("VIOLATION"), "{text}");
    }
}

//! `bench concurrency`: NOBENCH throughput vs thread count.
//!
//! The paper's performance story assumes a parallel engine driving tight
//! loops over many cores; this runner measures how the morsel-driven
//! executor actually scales. It builds the NOBENCH corpus once, plans
//! Q1–Q10 through the SQL front end (Q5 with its bind) plus the Q11
//! plan-level join, then re-runs the *same plans* at each requested
//! degree via [`Database::set_parallelism`]. Results are byte-identical
//! at every degree (the identity test in `tests/parallel_identity.rs`
//! asserts it); only wall-clock time may change.
//!
//! [`Database::set_parallelism`]: fsdm_store::Database::set_parallelism

use std::time::Duration;

use fsdm_sql::Session;
use fsdm_store::Query;

use crate::setup::{nobench_db, nobench_q11_plan, nobench_q5_bind};

/// Best-of-`reps` wall time for one query at one degree.
pub struct QueryTiming {
    /// Query label (`Q1` … `Q11`).
    pub label: String,
    /// Best observed wall time.
    pub best: Duration,
}

/// All query timings at one thread count.
pub struct ConcurrencyRow {
    /// The degree the database was pinned to.
    pub threads: usize,
    /// Per-query best times, in workload order Q1–Q11.
    pub per_query: Vec<QueryTiming>,
}

impl ConcurrencyRow {
    /// Summed best wall time across all queries.
    pub fn total(&self) -> Duration {
        self.per_query.iter().map(|q| q.best).sum()
    }

    /// Summed best wall time of the scan-heavy subset Q1–Q3 (the
    /// acceptance target: ≥ 2× throughput at 4 threads vs 1).
    pub fn scan_heavy(&self) -> Duration {
        self.per_query
            .iter()
            .filter(|q| matches!(q.label.as_str(), "Q1" | "Q2" | "Q3"))
            .map(|q| q.best)
            .sum()
    }
}

/// Plan the full NOBENCH query set against an existing session.
pub fn nobench_plans(session: &Session, n: usize) -> Vec<(String, Query)> {
    let mut plans = Vec::new();
    for q in 1..=10 {
        let sql = fsdm_workloads::nobench::query_sql(q, n);
        let binds = if q == 5 { vec![nobench_q5_bind(n)] } else { vec![] };
        let plan = session.plan(&sql, &binds).expect("NOBENCH query plans");
        plans.push((format!("Q{q}"), plan));
    }
    plans.push(("Q11".to_string(), nobench_q11_plan(n, false)));
    plans
}

/// Run the NOBENCH set at each thread count over one shared corpus of
/// `scale` documents. `warmup`/`reps` feed [`crate::time_best`].
pub fn run(scale: usize, threads: &[usize], warmup: usize, reps: usize) -> Vec<ConcurrencyRow> {
    let mut session = nobench_db(scale);
    let plans = nobench_plans(&session, scale);
    let mut rows = Vec::new();
    for &t in threads {
        session.db.set_parallelism(t);
        let mut per_query = Vec::with_capacity(plans.len());
        for (label, plan) in &plans {
            let best = crate::time_best(
                || {
                    session.db.execute(plan).expect("NOBENCH query executes");
                },
                warmup,
                reps,
            );
            per_query.push(QueryTiming { label: label.clone(), best });
        }
        rows.push(ConcurrencyRow { threads: t, per_query });
    }
    rows
}

/// Table rendering: one row per thread count with per-query ms, the
/// Q1–Q3 scan-heavy subtotal, the full-set wall time, and queries/sec.
pub fn render(scale: usize, rows: &[ConcurrencyRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== bench concurrency: NOBENCH (n = {scale}) ==");
    let mut header = format!("{:<8}", "threads");
    if let Some(first) = rows.first() {
        for q in &first.per_query {
            let _ = write!(header, " {:>8}", q.label);
        }
    }
    let _ = writeln!(out, "{header} {:>9} {:>9} {:>8}", "Q1-3", "total", "q/s");
    for row in rows {
        let mut line = format!("{:<8}", row.threads);
        for q in &row.per_query {
            let _ = write!(line, " {:>8}", crate::ms(q.best));
        }
        let total = row.total();
        let qps = row.per_query.len() as f64 / total.as_secs_f64().max(1e-9);
        let _ = writeln!(
            out,
            "{line} {:>9} {:>9} {:>8.1}",
            crate::ms(row.scan_heavy()),
            crate::ms(total),
            qps
        );
    }
    if let (Some(one), Some(four)) =
        (rows.iter().find(|r| r.threads == 1), rows.iter().find(|r| r.threads == 4))
    {
        let speedup = one.scan_heavy().as_secs_f64() / four.scan_heavy().as_secs_f64().max(1e-9);
        let _ = writeln!(out, "Q1-3 speedup 4t vs 1t: {speedup:.2}x");
    }
    out
}

/// Machine-readable rendering of a concurrency run, schema
/// `fsdm-bench-concurrency-v1`:
///
/// ```json
/// {"schema":"fsdm-bench-concurrency-v1","git_rev":"abc1234","scale":4000,
///  "threads":[1,2,4],
///  "rows":[{"threads":1,"per_query":{"Q1":{"ms":1.23,"qps":813.0},…},
///           "scan_heavy_ms":…,"total_ms":…,"qps":…},…],
///  "speedup":{"scan_heavy_4t_vs_1t":1.97}}
/// ```
///
/// The schema is stable: additions may append fields, never rename or
/// re-type existing ones, so `BENCH_concurrency.json` files accumulate
/// into a comparable perf trajectory across revisions.
pub fn to_json(scale: usize, rows: &[ConcurrencyRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"schema\":\"fsdm-bench-concurrency-v1\"");
    let _ = write!(out, ",\"git_rev\":\"{}\",\"scale\":{scale},\"threads\":[", git_rev());
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", r.threads);
    }
    out.push_str("],\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"threads\":{},\"per_query\":{{", r.threads);
        for (j, q) in r.per_query.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let ms = q.best.as_secs_f64() * 1e3;
            let qps = 1.0 / q.best.as_secs_f64().max(1e-9);
            let _ = write!(out, "\"{}\":{{\"ms\":{ms:.3},\"qps\":{qps:.1}}}", q.label);
        }
        let total = r.total();
        let _ = write!(
            out,
            "}},\"scan_heavy_ms\":{:.3},\"total_ms\":{:.3},\"qps\":{:.1}}}",
            r.scan_heavy().as_secs_f64() * 1e3,
            total.as_secs_f64() * 1e3,
            r.per_query.len() as f64 / total.as_secs_f64().max(1e-9)
        );
    }
    out.push_str("],\"speedup\":{");
    if let (Some(one), Some(four)) =
        (rows.iter().find(|r| r.threads == 1), rows.iter().find(|r| r.threads == 4))
    {
        let speedup = one.scan_heavy().as_secs_f64() / four.scan_heavy().as_secs_f64().max(1e-9);
        let _ = write!(out, "\"scan_heavy_4t_vs_1t\":{speedup:.3}");
    }
    out.push_str("}}");
    out
}

/// Short git revision of the working tree, `"unknown"` outside a
/// checkout (the bench trajectory keys results by revision).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_follows_the_stable_schema() {
        let rows = run(80, &[1, 4], 0, 1);
        let json = to_json(80, &rows);
        assert!(json.contains("\"schema\":\"fsdm-bench-concurrency-v1\""), "{json}");
        assert!(json.contains("\"git_rev\":\""), "{json}");
        assert!(json.contains("\"scale\":80"), "{json}");
        assert!(json.contains("\"threads\":[1,4]"), "{json}");
        assert!(json.contains("\"Q1\":{\"ms\":"), "{json}");
        assert!(json.contains("\"speedup\":{\"scan_heavy_4t_vs_1t\":"), "{json}");
        // must parse with the in-repo JSON parser
        fsdm_json::parse(&json).expect("bench JSON parses");
    }

    #[test]
    fn rows_report_subtotals_and_render() {
        let rows = run(120, &[1, 2], 0, 1);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.per_query.len(), 11, "Q1..Q11");
            assert!(r.scan_heavy() <= r.total());
        }
        let text = render(120, &rows);
        assert!(text.contains("threads"), "{text}");
        assert!(text.contains("Q11"), "{text}");
    }
}

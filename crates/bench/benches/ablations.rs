//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. the §6.3 JSON_EXISTS predicate pushdown (optimizer on vs off);
//! 2. the §4.2.1 field-id look-back cache (shared cursor vs fresh
//!    evaluator per document);
//! 3. OraNum vs IEEE-double number encoding (§4.2.3's two number modes).

use criterion::{criterion_group, criterion_main, Criterion};
use fsdm_bench::setup::{olap_db, StorageMethod};
use fsdm_sqljson::{parse_path, PathEvaluator};
use fsdm_workloads::{collections::purchase_order, rng_for};
use std::hint::black_box;

fn ablation_pushdown(c: &mut Criterion) {
    let n = 2_000;
    let session = olap_db(StorageMethod::Oson, n);
    let sql = "select count(*) from po_item_dmdv where partno = 'no-such-part'";
    let plan = session.plan(sql, &[]).unwrap();
    let optimized = fsdm_store::optimizer::optimize(&session.db, plan.clone());
    let mut g = c.benchmark_group("ablation_pushdown");
    g.sample_size(10);
    g.bench_function("with_json_exists_pushdown", |b| {
        b.iter(|| session.db.execute_unoptimized(black_box(&optimized)).unwrap())
    });
    g.bench_function("without_pushdown", |b| {
        b.iter(|| session.db.execute_unoptimized(black_box(&plan)).unwrap())
    });
    g.finish();
}

fn ablation_lookback(c: &mut Criterion) {
    let mut rng = rng_for("ablation-lookback", 1);
    let docs: Vec<Vec<u8>> =
        (0..500).map(|i| fsdm_oson::encode(&purchase_order(&mut rng, i)).unwrap()).collect();
    let path = parse_path("$.purchaseOrder.items[*].unitprice").unwrap();
    let mut g = c.benchmark_group("ablation_lookback");
    g.bench_function("shared_cursor_cache_hits", |b| {
        let mut ev = PathEvaluator::new(path.clone());
        b.iter(|| {
            let mut total = 0usize;
            for d in &docs {
                let doc = fsdm_oson::OsonDoc::new(d).unwrap();
                total += ev.evaluate(&doc).len();
            }
            total
        })
    });
    g.bench_function("fresh_evaluator_per_doc", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for d in &docs {
                let doc = fsdm_oson::OsonDoc::new(d).unwrap();
                let mut ev = PathEvaluator::new(path.clone());
                total += ev.evaluate(&doc).len();
            }
            total
        })
    });
    g.finish();
}

fn ablation_number_mode(c: &mut Criterion) {
    use fsdm_oson::{encode_with, EncoderOptions, NumberMode};
    let mut rng = rng_for("ablation-num", 1);
    let doc = purchase_order(&mut rng, 3);
    let mut g = c.benchmark_group("ablation_number_mode");
    g.bench_function("encode_oranum", |b| {
        b.iter(|| {
            encode_with(black_box(&doc), EncoderOptions { number_mode: NumberMode::OraNum })
                .unwrap()
        })
    });
    g.bench_function("encode_double", |b| {
        b.iter(|| {
            encode_with(black_box(&doc), EncoderOptions { number_mode: NumberMode::Double })
                .unwrap()
        })
    });
    g.finish();
}

fn ablation_set_encoding(c: &mut Criterion) {
    // §7 future work, implemented: per-instance self-contained OSON vs the
    // shared-dictionary set encoding for the in-memory store
    let mut rng = rng_for("ablation-set", 2);
    let docs: Vec<fsdm_json::JsonValue> = (0..300).map(|i| purchase_order(&mut rng, i)).collect();
    let individual: Vec<Vec<u8>> = docs.iter().map(|d| fsdm_oson::encode(d).unwrap()).collect();
    let mut b = fsdm_oson::OsonSetBuilder::new();
    for d in &docs {
        b.add(d.clone());
    }
    let set = b.finalize().unwrap();
    let path = parse_path("$.purchaseOrder.items[*].unitprice").unwrap();
    let mut g = c.benchmark_group("ablation_set_encoding");
    g.bench_function("instance_encoded_scan", |bch| {
        let mut ev = PathEvaluator::new(path.clone());
        bch.iter(|| {
            let mut n = 0usize;
            for bytes in &individual {
                let doc = fsdm_oson::OsonDoc::new(bytes).unwrap();
                n += ev.evaluate(&doc).len();
            }
            n
        })
    });
    g.bench_function("set_encoded_scan", |bch| {
        let mut ev = PathEvaluator::new(path.clone());
        bch.iter(|| {
            let mut n = 0usize;
            for i in 0..set.len() {
                n += ev.evaluate(&set.doc(i)).len();
            }
            n
        })
    });
    g.finish();
    let ind_bytes: usize = individual.iter().map(|b| b.len()).sum();
    eprintln!(
        "set-encoding memory: shared {} bytes vs per-instance {} bytes ({:.0}% saved)",
        set.heap_size(),
        ind_bytes,
        (1.0 - set.heap_size() as f64 / ind_bytes as f64) * 100.0
    );
}

criterion_group!(
    benches,
    ablation_pushdown,
    ablation_lookback,
    ablation_number_mode,
    ablation_set_encoding
);
criterion_main!(benches);

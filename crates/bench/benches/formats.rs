//! Criterion micro-benches for Table 10's formats: encode + decode +
//! field access per format on the purchaseOrder document.

use criterion::{criterion_group, criterion_main, Criterion};
use fsdm_json::{field_hash, JsonDom, ValueDom};
use fsdm_workloads::{collections::purchase_order, rng_for};
use std::hint::black_box;

fn bench_formats(c: &mut Criterion) {
    let mut rng = rng_for("bench-formats", 1);
    let doc = purchase_order(&mut rng, 42);
    let text = fsdm_json::to_string(&doc);
    let bson = fsdm_bson::encode(&doc).unwrap();
    let oson = fsdm_oson::encode(&doc).unwrap();

    let mut g = c.benchmark_group("encode");
    g.bench_function("json_text", |b| b.iter(|| fsdm_json::to_string(black_box(&doc))));
    g.bench_function("bson", |b| b.iter(|| fsdm_bson::encode(black_box(&doc)).unwrap()));
    g.bench_function("oson", |b| b.iter(|| fsdm_oson::encode(black_box(&doc)).unwrap()));
    g.finish();

    let mut g = c.benchmark_group("decode_full");
    g.bench_function("json_text", |b| b.iter(|| fsdm_json::parse(black_box(&text)).unwrap()));
    g.bench_function("bson", |b| b.iter(|| fsdm_bson::decode(black_box(&bson)).unwrap()));
    g.bench_function("oson", |b| b.iter(|| fsdm_oson::decode(black_box(&oson)).unwrap()));
    g.finish();

    // single-field access: the navigation story of §4
    let h = field_hash("purchaseOrder");
    let hc = field_hash("costcenter");
    let mut g = c.benchmark_group("field_access");
    g.bench_function("json_text_parse_then_navigate", |b| {
        b.iter(|| {
            let v = fsdm_json::parse(black_box(&text)).unwrap();
            let dom = ValueDom::new(&v);
            let po = dom.get_field(dom.root(), "purchaseOrder", h).unwrap();
            black_box(dom.get_field(po, "costcenter", hc));
        })
    });
    g.bench_function("bson_skip_navigate", |b| {
        b.iter(|| {
            let d = fsdm_bson::BsonDoc::new(black_box(&bson)).unwrap();
            let po = d.get_field(d.root(), "purchaseOrder", h).unwrap();
            black_box(d.get_field(po, "costcenter", hc));
        })
    });
    g.bench_function("oson_jump_navigate", |b| {
        b.iter(|| {
            let d = fsdm_oson::OsonDoc::new(black_box(&oson)).unwrap();
            let po = d.get_field(d.root(), "purchaseOrder", h).unwrap();
            black_box(d.get_field(po, "costcenter", hc));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);

//! Criterion benches for §5.1: the same SQL/JSON path evaluated by the
//! streaming engine over text and the DOM engine over each binary format.

use criterion::{criterion_group, criterion_main, Criterion};
use fsdm_json::ValueDom;
use fsdm_sqljson::{parse_path, PathEvaluator};
use fsdm_workloads::{collections::purchase_order, rng_for};
use std::hint::black_box;

fn bench_paths(c: &mut Criterion) {
    let mut rng = rng_for("bench-path", 1);
    let doc = purchase_order(&mut rng, 7);
    let text = fsdm_json::to_string(&doc);
    let bson = fsdm_bson::encode(&doc).unwrap();
    let oson = fsdm_oson::encode(&doc).unwrap();
    let simple = parse_path("$.purchaseOrder.items[*].unitprice").unwrap();
    let filtered = parse_path("$.purchaseOrder.items[*]?(@.quantity > 5).partno").unwrap();

    let mut g = c.benchmark_group("path_eval");
    g.bench_function("text_streaming_simple", |b| {
        b.iter(|| fsdm_sqljson::streaming::stream_values(black_box(&text), &simple).unwrap())
    });
    g.bench_function("text_dom_filtered", |b| {
        b.iter(|| fsdm_sqljson::streaming::eval_text(black_box(&text), &filtered).unwrap())
    });
    g.bench_function("oson_dom_simple", |b| {
        let mut ev = PathEvaluator::new(simple.clone());
        b.iter(|| {
            let d = fsdm_oson::OsonDoc::new(black_box(&oson)).unwrap();
            ev.evaluate(&d)
        })
    });
    g.bench_function("oson_dom_filtered", |b| {
        let mut ev = PathEvaluator::new(filtered.clone());
        b.iter(|| {
            let d = fsdm_oson::OsonDoc::new(black_box(&oson)).unwrap();
            ev.evaluate(&d)
        })
    });
    g.bench_function("bson_dom_simple", |b| {
        let mut ev = PathEvaluator::new(simple.clone());
        b.iter(|| {
            let d = fsdm_bson::BsonDoc::new(black_box(&bson)).unwrap();
            ev.evaluate(&d)
        })
    });
    g.bench_function("value_dom_simple", |b| {
        let mut ev = PathEvaluator::new(simple.clone());
        b.iter(|| {
            let dom = ValueDom::new(black_box(&doc));
            ev.evaluate(&dom)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);

//! Criterion benches for Figures 7/8: the insert pipeline per constraint
//! mode and per collection homogeneity.

use criterion::{criterion_group, criterion_main, Criterion};
use fsdm_bench::experiments::{run_homo_hetero, run_insertion_modes};

fn bench_insertion(c: &mut Criterion) {
    let n = 2_000;
    let mut g = c.benchmark_group("fig7_fig8_insert");
    g.sample_size(10);
    g.bench_function("three_constraint_modes", |b| b.iter(|| run_insertion_modes(n)));
    g.bench_function("homo_vs_hetero", |b| b.iter(|| run_homo_hetero(n)));
    g.finish();
}

criterion_group!(benches, bench_insertion);
criterion_main!(benches);

//! Criterion benches for Figure 3: representative OLAP queries per
//! storage method (reduced corpus; the repro binary runs the full grid).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsdm_bench::setup::{bind_datum, olap_db, olap_queries, StorageMethod};
use fsdm_sqljson::Datum;

fn bench_olap(c: &mut Criterion) {
    let n = 2_000;
    let queries = olap_queries(n);
    let mut g = c.benchmark_group("fig3_olap");
    g.sample_size(10);
    for method in StorageMethod::ALL {
        let mut session = olap_db(method, n);
        for qid in [2usize, 4, 7] {
            let q = queries.iter().find(|q| q.id == qid).unwrap();
            let binds: Vec<Datum> = q.binds.iter().map(|b| bind_datum(b)).collect();
            g.bench_with_input(
                BenchmarkId::new(format!("Q{qid}"), method.label()),
                &q.sql,
                |b, sql| b.iter(|| session.execute_with(sql, &binds).unwrap()),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_olap);
criterion_main!(benches);

//! Criterion benches for Figure 9: transient DataGuide aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsdm_bench::setup::nobench_db;

fn bench_agg(c: &mut Criterion) {
    let n = 5_000;
    let mut session = nobench_db(n);
    let mut g = c.benchmark_group("fig9_dataguide_agg");
    g.sample_size(10);
    for pct in [25u32, 50, 75, 99] {
        let sql = format!("select json_dataguideagg(jdoc) from nobench sample ({pct})");
        g.bench_with_input(BenchmarkId::new("transient", pct), &sql, |b, sql| {
            b.iter(|| session.execute(sql).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_agg);
criterion_main!(benches);

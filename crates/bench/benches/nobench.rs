//! Criterion benches for Figures 5/6: NOBENCH Q6 under the three
//! execution modes.

use criterion::{criterion_group, criterion_main, Criterion};
use fsdm_bench::setup::{add_nobench_vcs, nobench_db};
use fsdm_workloads::nobench::query_sql;

fn bench_nobench(c: &mut Criterion) {
    let n = 5_000;
    let q6 = query_sql(6, n);
    let q6_vc = format!(
        "select \"nb$num\" from nobench where \"nb$num\" between {} and {}",
        n / 2,
        n / 2 + n / 10
    );
    let mut g = c.benchmark_group("fig5_fig6_q6");
    g.sample_size(10);

    let mut text = nobench_db(n);
    g.bench_function("text_mode", |b| b.iter(|| text.execute(&q6).unwrap()));

    let mut oson = nobench_db(n);
    oson.db.table_mut("nobench").unwrap().populate_oson_imc().unwrap();
    g.bench_function("oson_imc_mode", |b| b.iter(|| oson.execute(&q6).unwrap()));

    let mut vc = nobench_db(n);
    add_nobench_vcs(&mut vc);
    vc.db.table_mut("nobench").unwrap().populate_oson_imc().unwrap();
    vc.db.table_mut("nobench").unwrap().populate_vc_imc(&["nb$str1", "nb$num", "nb$dyn1"]).unwrap();
    g.bench_function("vc_imc_mode", |b| b.iter(|| vc.execute(&q6_vc).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_nobench);
criterion_main!(benches);

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so the real
//! crate cannot be fetched; this package shadows it through a workspace
//! path dependency. It keeps the same bench-authoring API the repo uses
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `sample_size`,
//! `Bencher::iter`) but the measurement core is intentionally simple:
//! per benchmark it warms up briefly, then times `sample_size` samples of
//! an auto-calibrated iteration batch and prints min/mean/max ns per
//! iteration. No statistics, plots, or baselines — enough to compare
//! before/after within one machine, which is what the repro harness needs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _c: self, group: name.to_string(), sample_size: 10 }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.group, name), self.sample_size, f);
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.group, id), self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayed parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId { name: name.into(), param: format!("{param}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // calibrate: grow the iteration count until one batch takes long
    // enough to time reliably
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= SAMPLE_TARGET || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (SAMPLE_TARGET.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(grow);
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!("bench {label:<60} [{min:>12.1} {mean:>12.1} {max:>12.1}] ns/iter x{iters}");
}

/// Declare a group of benchmark functions (subset: positional form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}

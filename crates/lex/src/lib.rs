//! Shared syntax layer for the repo's Rust-source analyzers.
//!
//! `fsdm-tidy` (token rules) and `fsdm-sentinel` (concurrency facts)
//! both need to look at workspace sources without being fooled by
//! comments, strings, or raw strings — and sentinel additionally needs
//! to know which lines belong to which function. Keeping the scanner
//! and the item parser in one crate means the two analyzers cannot
//! drift in how they classify source text.

pub mod items;
pub mod scan;

pub use items::{line_idents, next_non_ws, parse_items, prev_non_ws, FnItem, Items};
pub use scan::{scan, Class, Scan};

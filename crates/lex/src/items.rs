//! A lightweight Rust item/block parser on top of [`crate::scan`].
//!
//! This is deliberately **not** a grammar-complete parser: it recovers
//! exactly the item structure the repo's analyzers need — which lines
//! belong to which function, what type an `impl` block is for, and the
//! parameter names of each function — by walking the masked (code-only)
//! character stream and matching braces. String and comment content is
//! already blanked by the scanner, so brace matching cannot be fooled by
//! literals.
//!
//! Limitations, by design: nested `fn` items inside a function body are
//! folded into the enclosing function (their lines attribute to it), and
//! macro-generated items are invisible. Both are acceptable for
//! may-analyses over hand-written source.

use crate::scan::Scan;

/// One `fn` item recovered from a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl`/`trait` self type, when the function is a method
    /// (`impl Foo` and `impl Trait for Foo` both record `Foo`).
    pub impl_type: Option<String>,
    /// Parameter identifiers in order, including `self` when present.
    /// Destructuring patterns contribute their last identifier.
    pub params: Vec<String>,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based line of the body's opening brace.
    pub body_start: usize,
    /// 0-based line of the body's closing brace (inclusive).
    pub body_end: usize,
    /// True when the function sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl FnItem {
    /// `Type::name` for methods, plain `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The item structure of one file.
#[derive(Debug, Default)]
pub struct Items {
    /// Every function with a body, in source order.
    pub functions: Vec<FnItem>,
}

impl Items {
    /// The innermost function whose body covers `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnItem> {
        self.functions.iter().rev().find(|f| f.sig_line <= line && line <= f.body_end)
    }
}

/// Identifiers in a masked line as `(start_col, end_col, word)` spans.
pub fn line_idents(masked: &str) -> Vec<(usize, usize, String)> {
    let chars: Vec<char> = masked.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let Some(&c) = chars.get(i) else { break };
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while chars.get(i).is_some_and(|&c| c.is_alphanumeric() || c == '_') {
                i += 1;
            }
            out.push((start, i, chars.get(start..i).unwrap_or(&[]).iter().collect()));
        } else {
            i += 1;
        }
    }
    out
}

/// First non-whitespace character at or after `from`.
pub fn next_non_ws(masked: &str, from: usize) -> Option<char> {
    masked.chars().skip(from).find(|c| !c.is_whitespace())
}

/// Last non-whitespace character strictly before `upto`.
pub fn prev_non_ws(masked: &str, upto: usize) -> Option<char> {
    masked.chars().take(upto).filter(|c| !c.is_whitespace()).last()
}

/// One token of the simplified item-level stream.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

/// What a `{` that is about to open belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ctx {
    /// A function body (index into `Items::functions`).
    Fn(usize),
    /// An `impl`/`trait` block for the named type.
    Impl(String),
    /// Anything else: modules, match arms, plain blocks, initializers.
    Other,
}

/// Parse the item structure of a scanned file.
pub fn parse_items(scan: &Scan) -> Items {
    let mut items = Items::default();
    // the context stack: one entry per open `{`
    let mut stack: Vec<Ctx> = Vec::new();
    // tokens of the current item "head" — everything since the last
    // item-level boundary (`{`, `}`, `;`) outside parens/brackets
    let mut head: Vec<(usize, Tok)> = Vec::new();
    // paren/bracket nesting inside the current head (a `;` inside
    // `for<'a> fn(...)` style types must not end the head)
    let mut grouping = 0usize;
    // how many enclosing contexts are function bodies
    let mut fn_depth = 0usize;
    // generic-argument angle depth, tracked only while reading a head
    let mut angle = 0usize;

    let lines: Vec<String> = (0..scan.lines.len()).map(|l| scan.masked(l)).collect();
    for (line_no, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut col = 0usize;
        while col < chars.len() {
            let Some(&c) = chars.get(col) else { break };
            match c {
                c if c.is_alphabetic() || c == '_' => {
                    let start = col;
                    while chars.get(col).is_some_and(|&ch| ch.is_alphanumeric() || ch == '_') {
                        col += 1;
                    }
                    let word: String = chars.get(start..col).unwrap_or(&[]).iter().collect();
                    head.push((line_no, Tok::Ident(word)));
                    continue;
                }
                '{' => {
                    let ctx = classify_head(&head, line_no, scan, &mut items, fn_depth, &stack);
                    if matches!(ctx, Ctx::Fn(_)) {
                        fn_depth += 1;
                    }
                    stack.push(ctx);
                    head.clear();
                    grouping = 0;
                    angle = 0;
                }
                '}' => {
                    if let Some(Ctx::Fn(idx)) = stack.pop() {
                        fn_depth = fn_depth.saturating_sub(1);
                        if let Some(f) = items.functions.get_mut(idx) {
                            f.body_end = line_no;
                        }
                    }
                    head.clear();
                    grouping = 0;
                    angle = 0;
                }
                ';' if grouping == 0 => {
                    head.clear();
                    angle = 0;
                }
                '(' | '[' => {
                    grouping += 1;
                    head.push((line_no, Tok::Punct(c)));
                }
                ')' | ']' => {
                    grouping = grouping.saturating_sub(1);
                    head.push((line_no, Tok::Punct(c)));
                }
                '<' => {
                    angle += 1;
                    head.push((line_no, Tok::Punct(c)));
                }
                '>' => {
                    angle = angle.saturating_sub(1);
                    head.push((line_no, Tok::Punct(c)));
                }
                c if c.is_whitespace() => {}
                c => head.push((line_no, Tok::Punct(c))),
            }
            col += 1;
        }
        let _ = angle; // angle depth is informational; `>` in `->` self-corrects
    }
    items
}

/// Decide what the `{` that just opened belongs to, registering a new
/// function when the head reads `fn name (…)`.
fn classify_head(
    head: &[(usize, Tok)],
    brace_line: usize,
    scan: &Scan,
    items: &mut Items,
    fn_depth: usize,
    stack: &[Ctx],
) -> Ctx {
    // find the *last* `fn` keyword in the head (attributes and visibility
    // come before it; closure types like `F: Fn(..)` are `Fn`, not `fn`)
    let fn_pos = head
        .iter()
        .rposition(|(_, t)| matches!(t, Tok::Ident(w) if w == "fn"))
        .filter(|_| fn_depth == 0);
    if let Some(pos) = fn_pos {
        if let Some((sig_line, Tok::Ident(name))) = head.get(pos + 1) {
            // `fn(` (a bare fn-pointer type) has no name ident and never
            // reaches here; a real item does
            let params = param_idents(head.get(pos + 2..).unwrap_or(&[]));
            let impl_type = stack.iter().rev().find_map(|c| match c {
                Ctx::Impl(t) => Some(t.clone()),
                _ => None,
            });
            items.functions.push(FnItem {
                name: name.clone(),
                impl_type,
                params,
                sig_line: *sig_line,
                body_start: brace_line,
                body_end: brace_line,
                in_test: scan.in_test(*sig_line),
            });
            return Ctx::Fn(items.functions.len() - 1);
        }
    }
    if fn_depth > 0 {
        return Ctx::Other;
    }
    let impl_pos =
        head.iter().position(|(_, t)| matches!(t, Tok::Ident(w) if w == "impl" || w == "trait"));
    if let Some(pos) = impl_pos {
        if let Some(ty) = impl_self_type(head.get(pos..).unwrap_or(&[])) {
            return Ctx::Impl(ty);
        }
    }
    Ctx::Other
}

/// Parameter identifiers from the token slice following a function name:
/// the contents of the first balanced `(…)` group. Each top-level
/// comma-separated binding contributes the last identifier of its
/// pattern (before the `:` type annotation when present).
fn param_idents(toks: &[(usize, Tok)]) -> Vec<String> {
    let mut out = Vec::new();
    // paren depth once inside the parameter list; angle depth both for
    // skipping the generic parameter list (`fn f<F: Fn(u8)>(..)` — that
    // inner paren group is a bound, not the params) and for ignoring
    // commas inside generic argument lists of parameter types
    let mut paren = 0usize;
    let mut angle = 0usize;
    let mut started = false;
    let mut current: Vec<&Tok> = Vec::new();
    let mut prev_dash = false;
    for (_, t) in toks {
        match t {
            Tok::Punct('(') => {
                if started {
                    current.push(t);
                    paren += 1;
                } else if angle == 0 {
                    started = true;
                    paren = 1;
                }
            }
            Tok::Punct(')') if started => {
                paren = paren.saturating_sub(1);
                if paren == 0 {
                    push_param(&mut out, &current);
                    return out;
                }
                current.push(t);
            }
            Tok::Punct('<') => {
                if started {
                    current.push(t);
                }
                angle += 1;
            }
            // `->` must not close a generic list
            Tok::Punct('>') if !prev_dash => {
                if started {
                    current.push(t);
                }
                angle = angle.saturating_sub(1);
            }
            Tok::Punct(',') if started && paren == 1 && angle == 0 => {
                push_param(&mut out, &current);
                current.clear();
            }
            _ if started => current.push(t),
            _ => {}
        }
        prev_dash = matches!(t, Tok::Punct('-'));
    }
    out
}

/// The binding identifier of one parameter: the last ident before the
/// top-level `:`, or the last ident of the whole pattern (`self`).
fn push_param(out: &mut Vec<String>, toks: &[&Tok]) {
    let mut last: Option<&str> = None;
    let mut angle = 0usize;
    let mut group = 0usize;
    for t in toks {
        match t {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle = angle.saturating_sub(1),
            Tok::Punct('(') | Tok::Punct('[') => group += 1,
            Tok::Punct(')') | Tok::Punct(']') => group = group.saturating_sub(1),
            Tok::Punct(':') if angle == 0 && group == 0 => break,
            Tok::Ident(w) if w != "mut" && w != "ref" => last = Some(w),
            _ => {}
        }
    }
    if let Some(w) = last {
        out.push(w.to_string());
    }
}

/// The self type of an `impl`/`trait` head: the first type identifier
/// after `for` when present (`impl Trait for Foo`), else the first type
/// identifier after the keyword and its generic parameter list. Path
/// types contribute their last segment (`fmt::Display` → `Display`).
fn impl_self_type(toks: &[(usize, Tok)]) -> Option<String> {
    let for_pos = toks.iter().position(|(_, t)| matches!(t, Tok::Ident(w) if w == "for"));
    let tail = match for_pos {
        Some(p) => toks.get(p + 1..)?,
        None => toks.get(1..)?,
    };
    // skip a leading generic parameter list `<…>`, then take the last
    // identifier of the leading path (stop at generics or `{`)
    let mut angle = 0usize;
    let mut name: Option<String> = None;
    for (_, t) in tail {
        match t {
            Tok::Punct('<') => {
                if name.is_some() {
                    break;
                }
                angle += 1;
            }
            Tok::Punct('>') => angle = angle.saturating_sub(1),
            Tok::Ident(w) if angle == 0 => {
                if w == "where" || w == "for" {
                    break;
                }
                name = Some(w.clone());
            }
            Tok::Punct(':') | Tok::Punct('&') | Tok::Punct('\'') => {}
            _ if angle > 0 => {}
            _ => {
                if name.is_some() {
                    break;
                }
            }
        }
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn functions(src: &str) -> Vec<FnItem> {
        parse_items(&scan(src)).functions
    }

    #[test]
    fn free_functions_and_bodies() {
        let src = "fn alpha(x: u8) -> u8 {\n    x + 1\n}\n\npub fn beta() {\n}\n";
        let fns = functions(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "alpha");
        assert_eq!(fns[0].params, vec!["x"]);
        assert_eq!((fns[0].sig_line, fns[0].body_start, fns[0].body_end), (0, 0, 2));
        assert_eq!(fns[1].name, "beta");
        assert!(fns[1].params.is_empty());
        assert_eq!(fns[1].impl_type, None);
    }

    #[test]
    fn impl_methods_record_their_type() {
        let src = "struct Ring;\nimpl Ring {\n    fn push(&mut self, v: u8) {\n        \
                   let _ = v;\n    }\n}\nimpl std::fmt::Debug for Ring {\n    \
                   fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {\n        \
                   Ok(())\n    }\n}\n";
        let fns = functions(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].qualified(), "Ring::push");
        assert_eq!(fns[0].params, vec!["self", "v"]);
        assert_eq!(fns[1].qualified(), "Ring::fmt");
        assert_eq!(fns[1].params, vec!["self", "f"]);
    }

    #[test]
    fn generic_impls_and_trait_impls() {
        let src = "impl<T: Clone> Wrapper<T> {\n    fn get(&self) -> &T {\n        &self.0\n    \
                   }\n}\nimpl<T> Drop for Wrapper<T> {\n    fn drop(&mut self) {}\n}\n";
        let fns = functions(src);
        assert_eq!(fns[0].qualified(), "Wrapper::get");
        assert_eq!(fns[1].qualified(), "Wrapper::drop");
    }

    #[test]
    fn nested_blocks_stay_inside_the_function() {
        let src = "fn outer(v: &[u8]) -> usize {\n    let mut n = 0;\n    for x in v {\n        \
                   if *x > 0 {\n            n += 1;\n        }\n    }\n    n\n}\nfn after() {}\n";
        let fns = functions(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].body_end, 8);
        assert_eq!(fns[1].name, "after");
        let items = parse_items(&scan(src));
        assert_eq!(items.enclosing_fn(4).map(|f| f.name.as_str()), Some("outer"));
        assert_eq!(items.enclosing_fn(9).map(|f| f.name.as_str()), Some("after"));
    }

    #[test]
    fn fn_pointer_types_and_closure_bounds_are_not_items() {
        let src = "type Cb = fn(u8) -> u8;\nfn real<F: Fn(u8) -> u8>(f: F) -> u8 {\n    \
                   f(1)\n}\n";
        let fns = functions(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
        assert_eq!(fns[0].params, vec!["f"]);
    }

    #[test]
    fn where_clauses_and_multiline_signatures() {
        let src = "pub fn run<T, F>(\n    ctx: &u8,\n    total: usize,\n    f: F,\n) -> \
                   Vec<T>\nwhere\n    T: Send,\n    F: Sync,\n{\n    Vec::new()\n}\n";
        let fns = functions(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "run");
        assert_eq!(fns[0].params, vec!["ctx", "total", "f"]);
        assert_eq!(fns[0].body_start, 8);
        assert_eq!(fns[0].body_end, 10);
    }

    #[test]
    fn test_region_functions_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   assert!(true);\n    }\n}\n";
        let fns = functions(src);
        assert_eq!(fns.len(), 2);
        assert!(!fns[0].in_test);
        assert!(fns[1].in_test, "{fns:?}");
    }

    #[test]
    fn match_arms_and_struct_literals_do_not_confuse_nesting() {
        let src = "fn f(x: u8) -> u8 {\n    match x {\n        0 => {\n            1\n        \
                   }\n        _ => 2,\n    }\n}\nstruct S {\n    a: u8,\n}\nfn g() -> S {\n    \
                   S { a: 1 }\n}\n";
        let fns = functions(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].body_end, 7);
        assert_eq!(fns[1].name, "g");
    }

    #[test]
    fn line_ident_spans() {
        let ids = line_idents("let x_1 = foo(bar);");
        let words: Vec<&str> = ids.iter().map(|(_, _, w)| w.as_str()).collect();
        assert_eq!(words, vec!["let", "x_1", "foo", "bar"]);
        assert_eq!(ids[1], (4, 7, "x_1".to_string()));
    }
}

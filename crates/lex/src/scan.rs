//! A comment-, string- and raw-string-aware scanner for Rust sources.
//!
//! Analysis rules (`fsdm-tidy`'s token rules, `fsdm-sentinel`'s
//! concurrency facts) must never fire on text inside a comment or a
//! string literal ("unwrap()" in a doc comment is prose, not a call),
//! so every file is first classified character by character. The scanner
//! is a small hand-rolled state machine — not a full lexer — that knows
//! exactly the token shapes that matter for masking:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments;
//! * string literals with escapes, byte strings, and raw strings with an
//!   arbitrary number of `#` guards;
//! * character literals versus lifetimes (`'a'` versus `&'a str`).

/// Classification of a single character of source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Class {
    /// Plain code: identifiers, operators, whitespace between tokens.
    Code,
    /// Inside a line or block comment (including the delimiters).
    Comment,
    /// A quote character delimiting a string or char literal (including
    /// raw-string `r#` guards).
    StrDelim,
    /// Payload of a string or char literal.
    StrContent,
}

/// The classified form of one source file.
pub struct Scan {
    /// Source split into lines, without the terminating newlines.
    pub lines: Vec<Vec<char>>,
    /// Per-line, per-character classes; parallel to `lines`.
    pub classes: Vec<Vec<Class>>,
    /// `(line index, text after the "//")` for every line comment.
    pub comments: Vec<(usize, String)>,
    /// True for lines inside a `#[cfg(test)]` module (attribute line
    /// through closing brace).
    pub test_lines: Vec<bool>,
    /// Whether the file ended with a newline (used by `--fix` rewrites).
    pub ends_with_newline: bool,
}

impl Scan {
    /// The code-only view of a line: non-code characters blanked to
    /// spaces, so column positions are preserved.
    pub fn masked(&self, line: usize) -> String {
        let (Some(chars), Some(classes)) = (self.lines.get(line), self.classes.get(line)) else {
            return String::new();
        };
        chars
            .iter()
            .zip(classes)
            .map(|(&ch, &cls)| if cls == Class::Code { ch } else { ' ' })
            .collect()
    }

    /// True when `line` falls inside a `#[cfg(test)]` module.
    pub fn in_test(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }
}

/// Accumulates `(char, class)` pairs into per-line vectors.
struct Sink {
    lines: Vec<Vec<char>>,
    classes: Vec<Vec<Class>>,
}

impl Sink {
    fn new() -> Self {
        Sink { lines: vec![Vec::new()], classes: vec![Vec::new()] }
    }

    fn push(&mut self, ch: char, cls: Class) {
        if ch == '\n' {
            self.lines.push(Vec::new());
            self.classes.push(Vec::new());
        } else if let (Some(line), Some(classes)) = (self.lines.last_mut(), self.classes.last_mut())
        {
            line.push(ch);
            classes.push(cls);
        }
    }

    fn current_line(&self) -> usize {
        self.lines.len().saturating_sub(1)
    }
}

fn is_ident(ch: char) -> bool {
    ch.is_alphanumeric() || ch == '_'
}

/// Classify a full source file.
pub fn scan(text: &str) -> Scan {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Sink::new();
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut i = 0;
    let mut prev_code: Option<char> = None;

    while let Some(&ch) = chars.get(i) {
        let next = chars.get(i + 1).copied();
        match ch {
            '/' if next == Some('/') => {
                let line = out.current_line();
                let mut text = String::new();
                out.push('/', Class::Comment);
                out.push('/', Class::Comment);
                i += 2;
                while let Some(&c) = chars.get(i) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    out.push(c, Class::Comment);
                    i += 1;
                }
                comments.push((line, text));
            }
            '/' if next == Some('*') => {
                out.push('/', Class::Comment);
                out.push('*', Class::Comment);
                i += 2;
                let mut depth = 1u32;
                while depth > 0 {
                    let Some(&c) = chars.get(i) else { break };
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push('/', Class::Comment);
                        out.push('*', Class::Comment);
                        i += 2;
                    } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push('*', Class::Comment);
                        out.push('/', Class::Comment);
                        i += 2;
                    } else {
                        out.push(c, Class::Comment);
                        i += 1;
                    }
                }
            }
            '"' => i = consume_string(&chars, i, &mut out),
            'r' | 'b' if prev_code.map(is_ident) != Some(true) => {
                if let Some(adv) = try_prefixed_literal(&chars, i, &mut out) {
                    i = adv;
                } else {
                    out.push(ch, Class::Code);
                    prev_code = Some(ch);
                    i += 1;
                }
            }
            '\'' => {
                if is_char_literal(&chars, i) {
                    i = consume_char_literal(&chars, i, &mut out);
                } else {
                    // a lifetime: the quote and its label are plain code
                    out.push('\'', Class::Code);
                    prev_code = Some('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(ch, Class::Code);
                if !ch.is_whitespace() {
                    prev_code = Some(ch);
                }
                i += 1;
            }
        }
        if matches!(ch, '"' | '\'') {
            prev_code = Some(ch);
        }
    }

    let ends_with_newline = text.ends_with('\n');
    let mut lines = out.lines;
    let mut classes = out.classes;
    if ends_with_newline && lines.last().is_some_and(Vec::is_empty) {
        lines.pop();
        classes.pop();
    }
    let mut scan = Scan { lines, classes, comments, test_lines: Vec::new(), ends_with_newline };
    scan.test_lines = find_test_regions(&scan);
    scan
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` — returns the index past
/// the literal, or `None` when `start` is not actually a literal prefix.
fn try_prefixed_literal(chars: &[char], start: usize, out: &mut Sink) -> Option<usize> {
    let mut i = start;
    let mut raw = false;
    if chars.get(i) == Some(&'b') {
        i += 1;
        if chars.get(i) == Some(&'\'') {
            // byte char literal b'x'
            out.push('b', Class::StrDelim);
            return Some(consume_char_literal(chars, i, out));
        }
    }
    if chars.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while raw && chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return None; // raw identifier (r#foo) or plain ident starting with b/r
    }
    for &c in chars.get(start..i).unwrap_or(&[]) {
        out.push(c, Class::StrDelim);
    }
    if raw {
        Some(consume_raw_string(chars, i, hashes, out))
    } else {
        Some(consume_string(chars, i, out))
    }
}

/// Consume `"…"` with escape handling; `i` points at the opening quote.
fn consume_string(chars: &[char], mut i: usize, out: &mut Sink) -> usize {
    out.push('"', Class::StrDelim);
    i += 1;
    while let Some(&c) = chars.get(i) {
        match c {
            '\\' => {
                out.push(c, Class::StrContent);
                if let Some(&esc) = chars.get(i + 1) {
                    out.push(esc, Class::StrContent);
                }
                i += 2;
            }
            '"' => {
                out.push('"', Class::StrDelim);
                return i + 1;
            }
            _ => {
                out.push(c, Class::StrContent);
                i += 1;
            }
        }
    }
    i
}

/// Consume `"…"###` with `hashes` guards; `i` points at the opening quote.
fn consume_raw_string(chars: &[char], mut i: usize, hashes: usize, out: &mut Sink) -> usize {
    out.push('"', Class::StrDelim);
    i += 1;
    while let Some(&c) = chars.get(i) {
        if c == '"' {
            let guard = chars.get(i + 1..i + 1 + hashes);
            if guard.is_some_and(|g| g.iter().all(|&h| h == '#')) {
                out.push('"', Class::StrDelim);
                for _ in 0..hashes {
                    out.push('#', Class::StrDelim);
                }
                return i + 1 + hashes;
            }
        }
        out.push(c, Class::StrContent);
        i += 1;
    }
    i
}

/// Distinguish `'a'` / `'\n'` (literals) from `'a` (lifetime); `i` points
/// at the quote.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Consume a char literal; `i` points at the opening quote.
fn consume_char_literal(chars: &[char], mut i: usize, out: &mut Sink) -> usize {
    out.push('\'', Class::StrDelim);
    i += 1;
    while let Some(&c) = chars.get(i) {
        match c {
            '\\' => {
                out.push(c, Class::StrContent);
                if let Some(&esc) = chars.get(i + 1) {
                    out.push(esc, Class::StrContent);
                }
                i += 2;
            }
            '\'' => {
                out.push('\'', Class::StrDelim);
                return i + 1;
            }
            _ => {
                out.push(c, Class::StrContent);
                i += 1;
            }
        }
    }
    i
}

/// Mark the line span of every `#[cfg(test)]` module: from the attribute
/// line through the brace that closes the item it decorates.
fn find_test_regions(scan: &Scan) -> Vec<bool> {
    let masked: Vec<String> = (0..scan.lines.len()).map(|l| scan.masked(l)).collect();
    let mut test = vec![false; masked.len()];
    for start in 0..masked.len() {
        let Some(line) = masked.get(start) else { continue };
        if !line.contains("#[cfg(test)]") {
            continue;
        }
        // walk forward to the first '{' after the attribute, then match
        // braces (strings and comments are already blanked)
        let mut depth = 0usize;
        let mut opened = false;
        let mut l = start;
        'outer: while let Some(line) = masked.get(l) {
            let from = if l == start {
                line.find("#[cfg(test)]").map(|p| p + "#[cfg(test)]".len()).unwrap_or(0)
            } else {
                0
            };
            for ch in line.chars().skip(from) {
                match ch {
                    '{' => {
                        opened = true;
                        depth += 1;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
            l += 1;
        }
        for flag in test.iter_mut().take((l + 1).min(masked.len())).skip(start) {
            *flag = true;
        }
    }
    test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked_all(src: &str) -> Vec<String> {
        let s = scan(src);
        (0..s.lines.len()).map(|l| s.masked(l)).collect()
    }

    #[test]
    fn masks_comments_and_strings() {
        let m = masked_all("let x = \"unwrap()\"; // unwrap()\nx.unwrap();\n");
        assert_eq!(m[0].trim_end(), "let x =           ;");
        assert_eq!(m[1], "x.unwrap();");
    }

    #[test]
    fn masks_raw_strings_with_guards() {
        let m = masked_all("let s = r#\"a \"quoted\" panic!()\"#;\n");
        assert!(!m[0].contains("panic"));
        assert!(m[0].contains("let s ="));
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = masked_all("a /* outer /* inner */ still */ b\n");
        assert_eq!(m[0].trim_end().chars().next(), Some('a'));
        assert!(m[0].contains('b'));
        assert!(!m[0].contains("inner"));
        assert!(!m[0].contains("still"));
    }

    #[test]
    fn lifetimes_are_code_char_literals_are_not() {
        let m = masked_all("fn f<'a>(x: &'a str) { let c = '{'; }\n");
        assert!(m[0].contains("<'a>"));
        assert!(!m[0].contains("'{'"), "char literal payload must be blanked: {}", m[0]);
    }

    #[test]
    fn byte_literals() {
        let m = masked_all("let b = b\"bytes\"; let c = b'x';\n");
        assert!(!m[0].contains("bytes"));
        assert!(!m[0].contains('x'));
    }

    #[test]
    fn collects_line_comments() {
        let s = scan("code(); // trailing note\n// full line\n");
        assert_eq!(s.comments.len(), 2);
        assert_eq!(s.comments[0], (0, " trailing note".to_string()));
        assert_eq!(s.comments[1], (1, " full line".to_string()));
    }

    #[test]
    fn finds_test_regions() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let s = scan(src);
        assert!(!s.in_test(0));
        assert!(s.in_test(1));
        assert!(s.in_test(2));
        assert!(s.in_test(3));
        assert!(s.in_test(4));
        assert!(!s.in_test(5));
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let m = masked_all("let r#type = 1; let hdr = 2;\n");
        assert!(m[0].contains("r#type"));
        assert!(m[0].contains("hdr"));
    }
}

//! Property-based tests for the relational engine: executor results
//! match a naive reference implementation on random data, across storage
//! formats and IMC modes.

use fsdm_json::JsonNumber;
use fsdm_sqljson::{parse_path, Datum, SqlType};
use fsdm_store::table::InsertValue;
use fsdm_store::{
    query::AggSpec, AggFun, CmpOp, ColType, ColumnSpec, ConstraintMode, Database, Expr,
    JsonStorage, Query, Table, TableSchema,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct DocRow {
    group: u8,
    value: i32,
    flag: bool,
}

fn arb_rows() -> impl Strategy<Value = Vec<DocRow>> {
    prop::collection::vec(
        (0u8..5, -1000i32..1000, any::<bool>()).prop_map(|(group, value, flag)| DocRow {
            group,
            value,
            flag,
        }),
        0..60,
    )
}

fn load(rows: &[DocRow], storage: JsonStorage) -> Database {
    let mut t = Table::new(TableSchema::new(
        "t",
        vec![
            ColumnSpec::new("id", ColType::Number),
            ColumnSpec::json("j", storage, ConstraintMode::IsJson),
        ],
    ));
    for (i, r) in rows.iter().enumerate() {
        let doc = format!(r#"{{"group":"g{}","value":{},"flag":{}}}"#, r.group, r.value, r.flag);
        t.insert(vec![(i as i64).into(), InsertValue::Json(doc)]).unwrap();
    }
    let mut db = Database::new();
    db.add_table(t);
    db
}

fn value_expr() -> Expr {
    Expr::json_value(1, parse_path("$.value").unwrap(), SqlType::Number)
}

fn group_expr() -> Expr {
    Expr::json_value(1, parse_path("$.group").unwrap(), SqlType::Varchar2(8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Filter counts agree with a direct computation, for every storage.
    #[test]
    fn filter_counts_match_reference(rows in arb_rows(), threshold in -1000i32..1000) {
        let expected = rows.iter().filter(|r| r.value > threshold).count();
        for storage in [JsonStorage::Text, JsonStorage::Bson, JsonStorage::Oson] {
            let db = load(&rows, storage);
            let q = Query::scan("t")
                .filter(Expr::cmp(
                    value_expr(),
                    CmpOp::Gt,
                    Expr::Lit(Datum::Num(JsonNumber::Int(threshold as i64))),
                ))
                .group_by(vec![], vec![AggSpec::count_star("n")]);
            let r = db.execute(&q).unwrap();
            prop_assert_eq!(
                r.rows[0][0].as_num().unwrap().to_i64().unwrap() as usize,
                expected,
                "{:?}",
                storage
            );
        }
    }

    /// Group-by sums agree with a reference fold, and are unaffected by
    /// populating the OSON-IMC cache.
    #[test]
    fn group_sums_match_reference(rows in arb_rows()) {
        let mut expected: std::collections::BTreeMap<u8, i64> = Default::default();
        for r in &rows {
            *expected.entry(r.group).or_default() += r.value as i64;
        }
        let mut db = load(&rows, JsonStorage::Text);
        let q = Query::scan("t").group_by(
            vec![("g", group_expr())],
            vec![AggSpec::of("s", AggFun::Sum, value_expr())],
        );
        let check = |r: &fsdm_store::QueryResult| -> std::result::Result<(), TestCaseError> {
            prop_assert_eq!(r.rows.len(), expected.len());
            for row in &r.rows {
                let g: u8 = row[0].to_text().trim_start_matches('g').parse().unwrap();
                let s = row[1].as_num().unwrap().to_i64().unwrap();
                prop_assert_eq!(s, expected[&g], "group {}", g);
            }
            Ok(())
        };
        let before = db.execute(&q).unwrap();
        check(&before)?;
        db.table_mut("t").unwrap().populate_oson_imc().unwrap();
        let after = db.execute(&q).unwrap();
        check(&after)?;
    }

    /// The vectorized IMC path returns exactly what row-at-a-time does.
    #[test]
    fn vectorized_filter_equals_row_filter(rows in arb_rows(), lo in -1000i32..1000) {
        let mut db = load(&rows, JsonStorage::Text);
        {
            let t = db.table_mut("t").unwrap();
            t.add_virtual_column("j$value", value_expr());
            t.populate_vc_imc(&["j$value"]).unwrap();
        }
        let vc_col = db.table("t").unwrap().scan_col_index("j$value").unwrap();
        let pred = Expr::cmp(
            Expr::Col(vc_col),
            CmpOp::Ge,
            Expr::Lit(Datum::Num(JsonNumber::Int(lo as i64))),
        );
        // optimized execute merges the filter into the scan → vectorized
        let q = Query::scan("t").filter(pred.clone()).project(vec![("id", Expr::Col(0))]);
        let fast = db.execute(&q).unwrap();
        let slow = db.execute_unoptimized(&q).unwrap();
        prop_assert_eq!(fast, slow);
    }

    /// Sort is total and stable with NULLs last.
    #[test]
    fn sort_order_holds(rows in arb_rows()) {
        let db = load(&rows, JsonStorage::Oson);
        let q = Query::scan("t")
            .project(vec![("v", value_expr())])
            .sort(vec![fsdm_store::SortKey::asc(Expr::Col(0))]);
        let r = db.execute(&q).unwrap();
        for w in r.rows.windows(2) {
            prop_assert!(w[0][0].order_key_cmp(&w[1][0]).is_le());
        }
    }
}

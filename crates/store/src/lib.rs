//! `fsdm-store`: the miniature relational engine underneath the FSDM
//! stack — the substrate standing in for the Oracle kernel in the paper's
//! evaluation.
//!
//! What it provides, mapped to the paper:
//!
//! * **Tables with typed columns** including JSON columns in three
//!   physical storages — `Text` (compact JSON text), `Bson`, `Oson` — plus
//!   ordinary scalar columns for the relationally-decomposed baseline
//!   (§6.3's four storage methods).
//! * **IS JSON check constraints** with optional DataGuide maintenance
//!   integrated into the insert pipeline, including the structure-
//!   signature fast path (§3.2.1; measured in Figures 7–8). A table can
//!   also carry a full [`fsdm_index::SearchIndex`].
//! * **Virtual columns** defined by expressions (e.g. `JSON_VALUE(…)`), as
//!   produced by the DataGuide's `AddVC()` (§3.3.1, §5.2.1).
//! * A **volcano-style executor** (scan / filter / project / hash join /
//!   group by / sort / window LAG / JSON_TABLE lateral) sufficient for the
//!   paper's OLAP and NOBENCH query sets.
//! * The **in-memory store** (§5.2): an OSON byte cache per JSON column
//!   (OSON-IMC — text on disk, binary in memory, queries transparently
//!   rewritten) and typed column vectors for (virtual) columns (VC-IMC).

pub mod database;
pub mod expr;
pub mod govern;
pub mod imc;
pub mod jsonaccess;
pub mod optimizer;
pub mod parallel;
pub mod profile;
pub mod query;
pub mod schema;
pub mod slowlog;
pub mod table;
pub mod typecheck;
pub mod vector;

pub use database::Database;
pub use expr::{AggFun, CmpOp, EvalScratch, Expr, ScalarFun};
pub use govern::{CancelHandle, CancelToken, QueryGovernor, ROWS_PER_CHECK};
pub use imc::{ColumnVector, ImcStore, VectorSlot};
pub use jsonaccess::{JsonCell, JsonStorage};
pub use parallel::{
    default_degree, morsels, run_morsels, ExecContext, ParStats, RowRange, DEFAULT_MORSEL_ROWS,
};
pub use profile::{OpProfile, QueryProfile};
pub use query::{Query, QueryResult, SortKey, WindowFun};
pub use schema::{ColType, ColumnSpec, ConstraintMode, TableSchema};
pub use slowlog::{SlowEntry, SlowLog};
pub use table::{CancelReason, Cell, ErrorKind, InsertValue, Row, StoreError, Table};
pub use typecheck::{
    check_plan, infer, plan_deterministic, plan_safety, rewrite_violations, ColInfo, Inference,
    ParallelSafety, PlanSchema, ScalarType,
};
pub use vector::{Batch, Mask, PredKernel, SelVec, Tri, ValKernel};

pub use fsdm_sqljson::{Datum, SqlType};

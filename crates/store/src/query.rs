//! Logical query plans: the algebra the executor runs.
//!
//! Plans are built programmatically (by the SQL front end in `fsdm-sql`,
//! by the DataGuide's generated views, and by the benchmark harness) and
//! executed by [`crate::database::Database::execute`].

use fsdm_sqljson::json_table::JsonTableDef;
use fsdm_sqljson::Datum;

use crate::expr::{AggFun, Expr};

/// Sort key: expression + direction.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Key expression over the input row.
    pub expr: Expr,
    /// Descending order when true.
    pub desc: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(expr: Expr) -> Self {
        SortKey { expr, desc: false }
    }

    /// Descending key.
    pub fn desc(expr: Expr) -> Self {
        SortKey { expr, desc: true }
    }
}

/// Window functions (the subset used by the paper's Q6).
#[derive(Debug, Clone)]
pub enum WindowFun {
    /// `LAG(expr, offset, default) OVER (ORDER BY …)`.
    Lag {
        /// Value expression.
        expr: Expr,
        /// How many rows back.
        offset: usize,
        /// Value when no preceding row exists.
        default: Option<Expr>,
    },
}

/// An aggregate output: name, function, argument (None for `COUNT(*)`).
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Output column name.
    pub name: String,
    /// Aggregate function.
    pub fun: AggFun,
    /// Argument expression.
    pub arg: Option<Expr>,
}

/// A logical query plan node.
// plan nodes are built once per query, not per row, so the size skew
// between variants (JsonTable carries a whole column-def tree) is moot
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Query {
    /// Scan a base table (emits base columns then virtual columns; applies
    /// the OSON-IMC substitution transparently when populated).
    Scan {
        /// Table name.
        table: String,
        /// Optional pushed-down predicate.
        filter: Option<Expr>,
    },
    /// Scan a registered view (expands to the view's plan).
    ViewScan {
        /// View name.
        view: String,
    },
    /// Filter rows.
    Filter {
        /// Input plan.
        input: Box<Query>,
        /// Predicate.
        pred: Expr,
    },
    /// Compute output expressions.
    Project {
        /// Input plan.
        input: Box<Query>,
        /// (name, expression) pairs.
        exprs: Vec<(String, Expr)>,
    },
    /// Lateral JSON_TABLE: for each input row, expand the JSON document in
    /// `json_col` through `def`; output = input columns ++ JSON_TABLE
    /// columns (NULL-padded when the document yields no rows — outer
    /// semantics, matching the generated views).
    JsonTable {
        /// Input plan.
        input: Box<Query>,
        /// Position of the JSON column in the input row.
        json_col: usize,
        /// Table function definition.
        def: JsonTableDef,
    },
    /// Hash equi-join (inner) on one column from each side; output = left
    /// columns ++ right columns.
    HashJoin {
        /// Left input (build side).
        left: Box<Query>,
        /// Right input (probe side).
        right: Box<Query>,
        /// Join key position in left rows.
        left_key: usize,
        /// Join key position in right rows.
        right_key: usize,
    },
    /// Hash aggregation.
    GroupBy {
        /// Input plan.
        input: Box<Query>,
        /// Grouping key expressions (named for the output).
        keys: Vec<(String, Expr)>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<Query>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Append a window-function column (computed over the given ordering).
    Window {
        /// Input plan.
        input: Box<Query>,
        /// Output column name.
        name: String,
        /// Window function.
        fun: WindowFun,
        /// ORDER BY of the window.
        order: Vec<SortKey>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<Query>,
        /// Row cap.
        n: usize,
    },
    /// Deterministic Bernoulli sampling (`SAMPLE (pct)`): keeps roughly
    /// `pct` percent of input rows, chosen by a position hash so repeated
    /// runs see the same sample.
    Sample {
        /// Input plan.
        input: Box<Query>,
        /// Percentage in (0, 100].
        pct: f64,
    },
}

impl Query {
    /// Scan builder.
    pub fn scan(table: impl Into<String>) -> Query {
        Query::Scan { table: table.into(), filter: None }
    }

    /// Scan with a pushed-down filter.
    pub fn scan_where(table: impl Into<String>, filter: Expr) -> Query {
        Query::Scan { table: table.into(), filter: Some(filter) }
    }

    /// View scan builder.
    pub fn view(view: impl Into<String>) -> Query {
        Query::ViewScan { view: view.into() }
    }

    /// Wrap in a filter.
    pub fn filter(self, pred: Expr) -> Query {
        Query::Filter { input: Box::new(self), pred }
    }

    /// Wrap in a projection.
    pub fn project(self, exprs: Vec<(&str, Expr)>) -> Query {
        Query::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(n, e)| (n.to_string(), e)).collect(),
        }
    }

    /// Wrap in a group-by.
    pub fn group_by(self, keys: Vec<(&str, Expr)>, aggs: Vec<AggSpec>) -> Query {
        Query::GroupBy {
            input: Box::new(self),
            keys: keys.into_iter().map(|(n, e)| (n.to_string(), e)).collect(),
            aggs,
        }
    }

    /// Wrap in a sort.
    pub fn sort(self, keys: Vec<SortKey>) -> Query {
        Query::Sort { input: Box::new(self), keys }
    }

    /// Wrap in a limit.
    pub fn limit(self, n: usize) -> Query {
        Query::Limit { input: Box::new(self), n }
    }

    /// Indented plan-tree rendering (the `EXPLAIN` surface — also used to
    /// show the optimizer's before/after shapes): one operator per line,
    /// predicates and expressions in their `Debug` form.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        fn walk(q: &Query, depth: usize, out: &mut String) {
            let _ = write!(out, "{:indent$}", "", indent = depth * 2);
            let _ = match q {
                Query::Scan { table, filter } => match filter {
                    Some(f) => writeln!(out, "Scan({table}) filter={f:?}"),
                    None => writeln!(out, "Scan({table})"),
                },
                Query::ViewScan { view } => writeln!(out, "ViewScan({view})"),
                Query::Filter { pred, .. } => writeln!(out, "Filter pred={pred:?}"),
                Query::Project { exprs, .. } => {
                    let names: Vec<&str> = exprs.iter().map(|(n, _)| n.as_str()).collect();
                    writeln!(out, "Project [{}]", names.join(", "))
                }
                Query::JsonTable { json_col, def, .. } => {
                    writeln!(out, "JsonTable(col#{json_col}, '{}')", def.row_path.text())
                }
                Query::HashJoin { left_key, right_key, .. } => {
                    writeln!(out, "HashJoin(left#{left_key} = right#{right_key})")
                }
                Query::GroupBy { keys, aggs, .. } => {
                    let names: Vec<&str> = keys
                        .iter()
                        .map(|(n, _)| n.as_str())
                        .chain(aggs.iter().map(|a| a.name.as_str()))
                        .collect();
                    writeln!(out, "GroupBy [{}]", names.join(", "))
                }
                Query::Sort { keys, .. } => writeln!(out, "Sort ({} keys)", keys.len()),
                Query::Window { name, .. } => writeln!(out, "Window({name})"),
                Query::Limit { n, .. } => writeln!(out, "Limit({n})"),
                Query::Sample { pct, .. } => writeln!(out, "Sample({pct})"),
            };
            match q {
                Query::Filter { input, .. }
                | Query::Project { input, .. }
                | Query::JsonTable { input, .. }
                | Query::GroupBy { input, .. }
                | Query::Sort { input, .. }
                | Query::Window { input, .. }
                | Query::Limit { input, .. }
                | Query::Sample { input, .. } => walk(input, depth + 1, out),
                Query::HashJoin { left, right, .. } => {
                    walk(left, depth + 1, out);
                    walk(right, depth + 1, out);
                }
                Query::Scan { .. } | Query::ViewScan { .. } => {}
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }
}

impl AggSpec {
    /// `COUNT(*)`.
    pub fn count_star(name: &str) -> AggSpec {
        AggSpec { name: name.to_string(), fun: AggFun::CountStar, arg: None }
    }

    /// An aggregate over an expression.
    pub fn of(name: &str, fun: AggFun, arg: Expr) -> AggSpec {
        AggSpec { name: name.to_string(), fun, arg: Some(arg) }
    }
}

/// A fully-materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Rows of datums (JSON cells rendered as text).
    pub rows: Vec<Vec<Datum>>,
}

impl QueryResult {
    /// Position of an output column.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Single-cell convenience accessor.
    pub fn cell(&self, row: usize, col: &str) -> Option<&Datum> {
        let c = self.col(col)?;
        self.rows.get(row)?.get(c)
    }
}

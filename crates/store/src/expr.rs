//! Row expressions: column references, literals, comparisons, arithmetic,
//! scalar functions, and the SQL/JSON operators.
//!
//! Expression trees are **immutable and `Send + Sync`**: the SQL/JSON
//! operators carry only their compiled [`JsonPath`] (behind an `Arc`, so
//! clones share it). All mutable evaluation state — the per-path
//! [`PathEvaluator`] cursors with their §4.2.1 look-back caches, and the
//! JSON_TABLE cursors — lives in an [`EvalScratch`] that each executor
//! worker owns and passes by `&mut`. That split is what lets one plan tree
//! be shared across morsel workers (see [`crate::parallel`]).

use std::collections::HashMap;
use std::sync::Arc;

use fsdm_sqljson::json_table::{JsonTableCursor, JsonTableDef};
use fsdm_sqljson::path::JsonPath;
use fsdm_sqljson::{Datum, PathEvaluator, SqlType};

use crate::imc::ColumnVector;
use crate::table::{Cell, Row, StoreError};
use crate::vector::{cmp_tri, PredKernel, Tri, ValKernel};

/// Per-worker evaluation state: reusable path evaluators keyed by the
/// shared compiled path, and JSON_TABLE cursors keyed by definition.
/// Both caches exist so the look-back field-id caches persist across the
/// rows a worker processes — exactly the state the expression tree itself
/// used to hold in `RefCell`s before the executor went parallel.
#[derive(Default)]
pub struct EvalScratch {
    /// One evaluator per distinct compiled path (keyed by `Arc` address:
    /// expression clones share the path, hence the evaluator).
    evaluators: HashMap<usize, PathEvaluator>,
    /// One cursor per JSON_TABLE definition (keyed by address; the
    /// definition outlives the execution it is scanned by).
    cursors: HashMap<usize, JsonTableCursor>,
}

impl EvalScratch {
    /// Fresh, empty scratch. Cheap: caches fill lazily on first use.
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }

    /// The reusable evaluator for `path`, created on first use.
    pub(crate) fn evaluator(&mut self, path: &Arc<JsonPath>) -> &mut PathEvaluator {
        self.evaluators
            .entry(Arc::as_ptr(path) as usize)
            .or_insert_with(|| PathEvaluator::new((**path).clone()))
    }

    /// The reusable JSON_TABLE cursor for `def`, created on first use.
    pub(crate) fn cursor(&mut self, def: &JsonTableDef) -> &mut JsonTableCursor {
        self.cursors
            .entry(def as *const JsonTableDef as usize)
            .or_insert_with(|| JsonTableCursor::new(def))
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Built-in scalar functions (the subset the paper's queries use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFun {
    /// `SUBSTR(s, pos [, len])` — 1-based as in Oracle.
    Substr,
    /// `INSTR(s, sub)` — 1-based position, 0 when absent.
    Instr,
    /// `UPPER(s)`.
    Upper,
    /// `LOWER(s)`.
    Lower,
    /// `LENGTH(s)`.
    Length,
    /// `CONCAT(a, b)` / `||`.
    Concat,
    /// `ABS(n)`.
    Abs,
    /// `NVL(a, b)`.
    Nvl,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFun {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(expr)` (non-null values).
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

/// A row expression tree.
#[derive(Clone)]
pub enum Expr {
    /// Column reference by position in the input row.
    Col(usize),
    /// Constant.
    Lit(Datum),
    /// Comparison (SQL three-valued logic; unknown is treated as false by
    /// filters).
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
    /// `expr IN (v1, v2, …)`.
    InList(Box<Expr>, Vec<Datum>),
    /// `a LIKE 'pat%'` (supports `%` and `_`).
    Like(Box<Expr>, String),
    /// Arithmetic.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// Scalar function call.
    Fun(ScalarFun, Vec<Expr>),
    /// `JSON_VALUE(col, path RETURNING ty)`. The evaluation cursor (whose
    /// look-back field-id cache persists across rows) lives in the
    /// caller's [`EvalScratch`], keyed by the shared compiled path.
    JsonValue {
        /// JSON column position.
        col: usize,
        /// Compiled path (shared by clones, so they share one cursor per
        /// scratch).
        path: Arc<JsonPath>,
        /// RETURNING type.
        ty: SqlType,
    },
    /// `JSON_EXISTS(col, path)`.
    JsonExists {
        /// JSON column position.
        col: usize,
        /// Compiled path.
        path: Arc<JsonPath>,
    },
}

impl std::fmt::Debug for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "col#{i}"),
            Expr::Lit(d) => write!(f, "{d}"),
            Expr::Cmp(a, op, b) => write!(f, "({a:?} {op:?} {b:?})"),
            Expr::And(a, b) => write!(f, "({a:?} AND {b:?})"),
            Expr::Or(a, b) => write!(f, "({a:?} OR {b:?})"),
            Expr::Not(a) => write!(f, "NOT {a:?}"),
            Expr::IsNull(a) => write!(f, "{a:?} IS NULL"),
            Expr::InList(a, l) => write!(f, "{a:?} IN {l:?}"),
            Expr::Like(a, p) => write!(f, "{a:?} LIKE {p:?}"),
            Expr::Arith(a, op, b) => write!(f, "({a:?} {op:?} {b:?})"),
            Expr::Fun(fun, args) => write!(f, "{fun:?}{args:?}"),
            Expr::JsonValue { col, path, ty, .. } => {
                write!(f, "JSON_VALUE(col#{col}, '{}' RET {ty})", path.text())
            }
            Expr::JsonExists { col, path, .. } => {
                write!(f, "JSON_EXISTS(col#{col}, '{}')", path.text())
            }
        }
    }
}

impl Expr {
    /// Convenience constructor: `JSON_VALUE`.
    pub fn json_value(col: usize, path: JsonPath, ty: SqlType) -> Expr {
        Expr::JsonValue { col, path: Arc::new(path), ty }
    }

    /// Convenience constructor: `JSON_EXISTS`.
    pub fn json_exists(col: usize, path: JsonPath) -> Expr {
        Expr::JsonExists { col, path: Arc::new(path) }
    }

    /// Convenience constructor: comparison with a literal.
    pub fn cmp(lhs: Expr, op: CmpOp, rhs: Expr) -> Expr {
        Expr::Cmp(Box::new(lhs), op, Box::new(rhs))
    }

    /// Evaluate against a row with a throwaway scratch. Convenience for
    /// cold paths (planning, tests); hot loops should hold one
    /// [`EvalScratch`] per worker and call [`Expr::eval_with`] so path
    /// cursors and their look-back caches persist across rows.
    pub fn eval(&self, row: &Row) -> Result<Datum, StoreError> {
        self.eval_with(row, &mut EvalScratch::new())
    }

    /// Evaluate against a row, drawing cursor state from `scratch`.
    pub fn eval_with(&self, row: &Row, scratch: &mut EvalScratch) -> Result<Datum, StoreError> {
        Ok(match self {
            Expr::Col(i) => match row.get(*i) {
                Some(Cell::D(d)) => d.clone(),
                Some(Cell::J(j)) => Datum::Str(j.decode_to_text()),
                None => return Err(StoreError::new(format!("column {i} out of range"))),
            },
            Expr::Lit(d) => d.clone(),
            Expr::Cmp(a, op, b) => {
                let (x, y) = (a.eval_with(row, scratch)?, b.eval_with(row, scratch)?);
                match x.sql_cmp(&y) {
                    None => Datum::Null, // unknown
                    Some(ord) => Datum::Bool(match op {
                        CmpOp::Eq => ord.is_eq(),
                        CmpOp::Ne => ord.is_ne(),
                        CmpOp::Lt => ord.is_lt(),
                        CmpOp::Le => ord.is_le(),
                        CmpOp::Gt => ord.is_gt(),
                        CmpOp::Ge => ord.is_ge(),
                    }),
                }
            }
            Expr::And(a, b) => {
                three_valued_and(a.eval_with(row, scratch)?, b.eval_with(row, scratch)?)
            }
            Expr::Or(a, b) => {
                three_valued_or(a.eval_with(row, scratch)?, b.eval_with(row, scratch)?)
            }
            Expr::Not(a) => match a.eval_with(row, scratch)? {
                Datum::Bool(v) => Datum::Bool(!v),
                Datum::Null => Datum::Null,
                _ => return Err(StoreError::new("NOT applied to non-boolean")),
            },
            Expr::IsNull(a) => Datum::Bool(a.eval_with(row, scratch)?.is_null()),
            Expr::InList(a, list) => {
                let v = a.eval_with(row, scratch)?;
                if v.is_null() {
                    Datum::Null
                } else {
                    Datum::Bool(
                        list.iter().any(|d| v.sql_cmp(d).map(|o| o.is_eq()).unwrap_or(false)),
                    )
                }
            }
            Expr::Like(a, pat) => {
                let v = a.eval_with(row, scratch)?;
                match v {
                    Datum::Null => Datum::Null,
                    other => Datum::Bool(like_match(&other.to_text(), pat)),
                }
            }
            Expr::Arith(a, op, b) => {
                let (x, y) = (a.eval_with(row, scratch)?, b.eval_with(row, scratch)?);
                arith_datums(&x, *op, &y)?
            }
            Expr::Fun(fun, args) => eval_fun(*fun, args, row, scratch)?,
            Expr::JsonValue { col, path, ty } => match row.get(*col) {
                Some(Cell::J(j)) => j.json_value(scratch.evaluator(path), *ty),
                Some(Cell::D(_)) | None => {
                    return Err(StoreError::new("JSON_VALUE on non-JSON column"))
                }
            },
            Expr::JsonExists { col, path } => match row.get(*col) {
                Some(Cell::J(j)) => Datum::Bool(j.json_exists(scratch.evaluator(path))),
                Some(Cell::D(_)) | None => {
                    return Err(StoreError::new("JSON_EXISTS on non-JSON column"))
                }
            },
        })
    }

    /// Predicate evaluation: SQL WHERE semantics (NULL/unknown = reject).
    /// Throwaway-scratch convenience, like [`Expr::eval`].
    pub fn matches(&self, row: &Row) -> Result<bool, StoreError> {
        self.matches_with(row, &mut EvalScratch::new())
    }

    /// [`Expr::matches`] drawing cursor state from `scratch`.
    pub fn matches_with(&self, row: &Row, scratch: &mut EvalScratch) -> Result<bool, StoreError> {
        fsdm_fault::fire(fsdm_fault::catalog::FP_EXPR_EVAL).map_err(crate::govern::fault_err)?;
        Ok(matches!(self.eval_with(row, scratch)?, Datum::Bool(true)))
    }

    /// Lower this predicate to a vectorized kernel plan when every column
    /// it references is IMC-resident (and the vectors are not stale —
    /// `len == nrows` guards against inserts after `populate_vc_imc`).
    /// Returns `None` on any shape the kernels cannot express exactly;
    /// the caller then falls back to the scratch-based row path, which
    /// remains the semantic reference.
    ///
    /// The lowering assumes vector null-ness mirrors datum null-ness,
    /// which holds for typed base columns and for VC vectors (the only
    /// things `populate_vc_imc` materializes).
    pub(crate) fn compile_predicate(
        &self,
        vectors: &HashMap<usize, Arc<ColumnVector>>,
        nrows: usize,
    ) -> Option<PredKernel> {
        match self {
            Expr::Cmp(a, op, b) => {
                let (col, op, lit) = match (&**a, &**b) {
                    (Expr::Col(i), Expr::Lit(d)) => (*i, *op, d),
                    (Expr::Lit(d), Expr::Col(i)) => (*i, flip_cmp(*op), d),
                    _ => return None,
                };
                compile_cmp(resident(vectors, col, nrows)?, op, lit)
            }
            Expr::And(a, b) => Some(PredKernel::And(
                Box::new(a.compile_predicate(vectors, nrows)?),
                Box::new(b.compile_predicate(vectors, nrows)?),
            )),
            Expr::Or(a, b) => Some(PredKernel::Or(
                Box::new(a.compile_predicate(vectors, nrows)?),
                Box::new(b.compile_predicate(vectors, nrows)?),
            )),
            Expr::Not(a) => Some(PredKernel::Not(Box::new(a.compile_predicate(vectors, nrows)?))),
            Expr::IsNull(a) => match &**a {
                Expr::Col(i) => Some(PredKernel::IsNull { col: resident(vectors, *i, nrows)? }),
                _ => None,
            },
            Expr::InList(a, list) => match &**a {
                Expr::Col(i) => compile_in(resident(vectors, *i, nrows)?, list),
                _ => None,
            },
            Expr::Like(a, pat) => match &**a {
                Expr::Col(i) => {
                    let v = resident(vectors, *i, nrows)?;
                    let ColumnVector::Strings { dict, .. } = &*v else { return None };
                    // one LIKE match per distinct value, not per row
                    let verdicts: Arc<[Tri]> = dict
                        .iter()
                        .map(|d| if like_match(d, pat) { Tri::True } else { Tri::False })
                        .collect();
                    Some(PredKernel::StrVerdict { col: v, verdicts })
                }
                _ => None,
            },
            // a bare boolean column used as the filter
            Expr::Col(i) => {
                let v = resident(vectors, *i, nrows)?;
                matches!(&*v, ColumnVector::Bools(_)).then(|| PredKernel::Truth { col: v })
            }
            _ => None,
        }
    }

    /// Lower a projection/aggregate-argument expression to a gather
    /// kernel. Only virtual columns (`col >= floor`, the base-schema
    /// width) are read from vectors: VC vectors hold exactly the datums
    /// the defining expression produced, whereas base-column vectors
    /// normalize values (`from_datums` folds numbers to `f64`), which
    /// would break byte-identity with the row path on materialized
    /// output. Predicates tolerate that normalization (comparisons are
    /// value-based); gathers must not.
    pub(crate) fn compile_value(
        &self,
        vectors: &HashMap<usize, Arc<ColumnVector>>,
        nrows: usize,
        floor: usize,
    ) -> Option<ValKernel> {
        match self {
            Expr::Col(i) if *i >= floor => Some(ValKernel::Col(resident(vectors, *i, nrows)?)),
            Expr::Lit(d) => Some(ValKernel::Lit(d.clone())),
            Expr::Arith(a, op, b) => Some(ValKernel::Arith {
                l: Box::new(a.compile_value(vectors, nrows, floor)?),
                op: *op,
                r: Box::new(b.compile_value(vectors, nrows, floor)?),
            }),
            _ => None,
        }
    }
}

/// The vector for `col`, if materialized and covering every current row.
fn resident(
    vectors: &HashMap<usize, Arc<ColumnVector>>,
    col: usize,
    nrows: usize,
) -> Option<Arc<ColumnVector>> {
    let v = vectors.get(&col)?;
    (v.len() == nrows).then(|| v.clone())
}

/// Mirror a comparison so the column is always on the left.
fn flip_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Lower `col <op> lit` against the column's vector representation.
fn compile_cmp(v: Arc<ColumnVector>, op: CmpOp, lit: &Datum) -> Option<PredKernel> {
    match &*v {
        // `as_num` applies the same Str-side coercion `sql_cmp` uses, and
        // rejects Bool/Null literals (which compare unknown — fall back)
        ColumnVector::Numbers(_) => {
            let lit = lit.as_num()?;
            Some(PredKernel::NumCmp { col: v, op, lit })
        }
        ColumnVector::Strings { dict, .. } => match lit {
            Datum::Str(s) => Some(match op {
                // equality probes binary-search the sorted dictionary
                CmpOp::Eq | CmpOp::Ne => PredKernel::StrEq {
                    code: dict.binary_search(s).ok().map(|c| c as u32),
                    col: v,
                    negate: op == CmpOp::Ne,
                },
                // ranges become code-threshold tests: the dictionary is
                // sorted, so code order == string order
                CmpOp::Lt => PredKernel::StrBelow {
                    bound: dict.partition_point(|d| d < s) as u32,
                    col: v,
                    below: true,
                },
                CmpOp::Le => PredKernel::StrBelow {
                    bound: dict.partition_point(|d| d <= s) as u32,
                    col: v,
                    below: true,
                },
                CmpOp::Gt => PredKernel::StrBelow {
                    bound: dict.partition_point(|d| d <= s) as u32,
                    col: v,
                    below: false,
                },
                CmpOp::Ge => PredKernel::StrBelow {
                    bound: dict.partition_point(|d| d < s) as u32,
                    col: v,
                    below: false,
                },
            }),
            // numeric literal: evaluate `sql_cmp`'s coercion once per
            // dictionary entry instead of once per row
            Datum::Num(_) => {
                let verdicts: Arc<[Tri]> =
                    dict.iter().map(|d| cmp_tri(Datum::Str(d.clone()).sql_cmp(lit), op)).collect();
                Some(PredKernel::StrVerdict { col: v, verdicts })
            }
            _ => None,
        },
        ColumnVector::Bools(_) => match lit {
            Datum::Bool(b) => Some(PredKernel::BoolCmp { col: v, op, lit: *b }),
            _ => None,
        },
    }
}

/// Lower `col IN (…)` against the column's vector representation.
fn compile_in(v: Arc<ColumnVector>, list: &[Datum]) -> Option<PredKernel> {
    match &*v {
        // non-coercible list entries can never match a Num operand
        // (`sql_cmp` returns unknown → IN's `unwrap_or(false)`), so they
        // drop out of the compiled list entirely
        ColumnVector::Numbers(_) => {
            let nums: Vec<_> = list.iter().filter_map(|d| d.as_num()).collect();
            Some(PredKernel::NumIn { col: v, list: nums.into() })
        }
        ColumnVector::Strings { dict, .. } => {
            let verdicts: Arc<[Tri]> = dict
                .iter()
                .map(|e| {
                    let v = Datum::Str(e.clone());
                    let hit = list.iter().any(|d| v.sql_cmp(d).map(|o| o.is_eq()).unwrap_or(false));
                    if hit {
                        Tri::True
                    } else {
                        Tri::False
                    }
                })
                .collect();
            Some(PredKernel::StrVerdict { col: v, verdicts })
        }
        // bool IN reduces to equality kernels (nulls stay unknown)
        ColumnVector::Bools(_) => {
            let eq = |b: bool| PredKernel::BoolCmp { col: v.clone(), op: CmpOp::Eq, lit: b };
            let with_true = list.contains(&Datum::Bool(true));
            let with_false = list.contains(&Datum::Bool(false));
            Some(match (with_true, with_false) {
                (true, true) => PredKernel::Or(Box::new(eq(true)), Box::new(eq(false))),
                (true, false) => eq(true),
                (false, true) => eq(false),
                // nothing can match: false for non-null, unknown for null
                (false, false) => PredKernel::And(Box::new(eq(true)), Box::new(eq(false))),
            })
        }
    }
}

fn three_valued_and(a: Datum, b: Datum) -> Datum {
    match (a, b) {
        (Datum::Bool(false), _) | (_, Datum::Bool(false)) => Datum::Bool(false),
        (Datum::Bool(true), Datum::Bool(true)) => Datum::Bool(true),
        _ => Datum::Null,
    }
}

fn three_valued_or(a: Datum, b: Datum) -> Datum {
    match (a, b) {
        (Datum::Bool(true), _) | (_, Datum::Bool(true)) => Datum::Bool(true),
        (Datum::Bool(false), Datum::Bool(false)) => Datum::Bool(false),
        _ => Datum::Null,
    }
}

fn eval_fun(
    fun: ScalarFun,
    args: &[Expr],
    row: &Row,
    scratch: &mut EvalScratch,
) -> Result<Datum, StoreError> {
    let vals: Vec<Datum> =
        args.iter().map(|a| a.eval_with(row, scratch)).collect::<Result<_, _>>()?;
    let s = |i: usize| -> Option<String> {
        vals.get(i).and_then(|d| if d.is_null() { None } else { Some(d.to_text()) })
    };
    Ok(match fun {
        ScalarFun::Upper => match s(0) {
            Some(x) => Datum::Str(x.to_uppercase()),
            None => Datum::Null,
        },
        ScalarFun::Lower => match s(0) {
            Some(x) => Datum::Str(x.to_lowercase()),
            None => Datum::Null,
        },
        ScalarFun::Length => match s(0) {
            Some(x) => Datum::from(x.chars().count() as i64),
            None => Datum::Null,
        },
        ScalarFun::Concat => match (s(0), s(1)) {
            (Some(a), Some(b)) => Datum::Str(a + &b),
            _ => Datum::Null,
        },
        ScalarFun::Abs => match vals.first().and_then(|d| d.as_num()) {
            Some(n) => Datum::from(n.to_f64().abs()),
            None => Datum::Null,
        },
        ScalarFun::Nvl => {
            let first = vals.first().cloned().unwrap_or(Datum::Null);
            if first.is_null() {
                vals.get(1).cloned().unwrap_or(Datum::Null)
            } else {
                first
            }
        }
        ScalarFun::Instr => match (s(0), s(1)) {
            (Some(hay), Some(needle)) => {
                // 1-based character position, 0 when absent (Oracle INSTR)
                match hay.find(&needle) {
                    Some(byte_pos) => Datum::from(hay[..byte_pos].chars().count() as i64 + 1),
                    None => Datum::from(0i64),
                }
            }
            _ => Datum::Null,
        },
        ScalarFun::Substr => {
            let text = match s(0) {
                Some(t) => t,
                None => return Ok(Datum::Null),
            };
            let pos = vals
                .get(1)
                .and_then(|d| d.as_num())
                .and_then(|n| n.to_i64())
                .ok_or_else(|| StoreError::new("SUBSTR position must be an integer"))?;
            let chars: Vec<char> = text.chars().collect();
            // Oracle SUBSTR: 1-based; 0 treated as 1; negative counts from
            // the end
            let start = if pos > 0 {
                (pos - 1) as usize
            } else if pos == 0 {
                0
            } else {
                chars.len().saturating_sub((-pos) as usize)
            };
            let len = match vals.get(2) {
                None => chars.len().saturating_sub(start),
                Some(d) => match d.as_num().and_then(|n| n.to_i64()) {
                    Some(l) if l > 0 => l as usize,
                    _ => return Ok(Datum::Null),
                },
            };
            let out: String = chars.iter().skip(start).take(len).collect();
            Datum::Str(out)
        }
    })
}

/// Numeric arithmetic with SQL NULL propagation — the single definition
/// shared by the row evaluator above and the vectorized
/// [`crate::vector::ValKernel`], so both paths agree bit-for-bit on
/// nulls, coercion failures, and division by zero.
pub(crate) fn arith_datums(x: &Datum, op: ArithOp, y: &Datum) -> Result<Datum, StoreError> {
    if x.is_null() || y.is_null() {
        return Ok(Datum::Null);
    }
    let (nx, ny) = match (x.as_num(), y.as_num()) {
        (Some(nx), Some(ny)) => (nx.to_f64(), ny.to_f64()),
        _ => return Err(StoreError::new("arithmetic on non-numeric value")),
    };
    let r = match op {
        ArithOp::Add => nx + ny,
        ArithOp::Sub => nx - ny,
        ArithOp::Mul => nx * ny,
        ArithOp::Div => {
            if ny == 0.0 {
                return Err(StoreError::new("division by zero"));
            }
            nx / ny
        }
    };
    Ok(Datum::from(r))
}

/// SQL LIKE with `%` and `_` wildcards.
pub(crate) fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => (0..=t.len()).any(|k| rec(&t[k..], &p[1..])),
            Some('_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(c) => t.first() == Some(c) && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonaccess::{JsonCell, JsonStorage};
    use fsdm_sqljson::parse_path;

    fn row() -> Row {
        let doc = fsdm_json::parse(r#"{"id":5,"name":"phone-x","price":99.5}"#).unwrap();
        vec![
            Cell::D(Datum::from(1i64)),
            Cell::D(Datum::from("REF-2021-77")),
            Cell::J(JsonCell::encode(&doc, JsonStorage::Oson).unwrap()),
            Cell::D(Datum::Null),
        ]
    }

    #[test]
    fn comparisons_and_logic() {
        let r = row();
        let e = Expr::cmp(Expr::Col(0), CmpOp::Eq, Expr::Lit(Datum::from(1i64)));
        assert!(e.matches(&r).unwrap());
        let f = Expr::And(
            Box::new(Expr::cmp(Expr::Col(0), CmpOp::Ge, Expr::Lit(Datum::from(1i64)))),
            Box::new(Expr::Not(Box::new(Expr::IsNull(Box::new(Expr::Col(0)))))),
        );
        assert!(f.matches(&r).unwrap());
        // NULL comparisons are unknown, and filters reject unknown
        let g = Expr::cmp(Expr::Col(3), CmpOp::Eq, Expr::Lit(Datum::Null));
        assert!(!g.matches(&r).unwrap());
    }

    #[test]
    fn in_list_and_like() {
        let r = row();
        let e = Expr::InList(Box::new(Expr::Col(0)), vec![Datum::from(7i64), Datum::from(1i64)]);
        assert!(e.matches(&r).unwrap());
        let l = Expr::Like(Box::new(Expr::Col(1)), "REF-%".into());
        assert!(l.matches(&r).unwrap());
        let l2 = Expr::Like(Box::new(Expr::Col(1)), "REF-____-77".into());
        assert!(l2.matches(&r).unwrap());
        let l3 = Expr::Like(Box::new(Expr::Col(1)), "XYZ%".into());
        assert!(!l3.matches(&r).unwrap());
    }

    #[test]
    fn arithmetic() {
        let r = row();
        let e = Expr::Arith(
            Box::new(Expr::Col(0)),
            ArithOp::Add,
            Box::new(Expr::Lit(Datum::from(2i64))),
        );
        assert_eq!(e.eval(&r).unwrap(), Datum::from(3i64));
        let div0 = Expr::Arith(
            Box::new(Expr::Col(0)),
            ArithOp::Div,
            Box::new(Expr::Lit(Datum::from(0i64))),
        );
        assert!(div0.eval(&r).is_err());
        // NULL propagates
        let n = Expr::Arith(Box::new(Expr::Col(3)), ArithOp::Mul, Box::new(Expr::Col(0)));
        assert!(n.eval(&r).unwrap().is_null());
    }

    #[test]
    fn q6_style_substr_instr() {
        let r = row();
        // SUBSTR(ref, INSTR(ref, '-') + 1) → "2021-77"
        let instr = Expr::Fun(ScalarFun::Instr, vec![Expr::Col(1), Expr::Lit(Datum::from("-"))]);
        let sub = Expr::Fun(
            ScalarFun::Substr,
            vec![
                Expr::Col(1),
                Expr::Arith(Box::new(instr), ArithOp::Add, Box::new(Expr::Lit(Datum::from(1i64)))),
            ],
        );
        assert_eq!(sub.eval(&r).unwrap(), Datum::from("2021-77"));
    }

    #[test]
    fn substr_variants() {
        let r = vec![Cell::D(Datum::from("abcdef"))];
        let sub = |pos: i64, len: Option<i64>| {
            let mut args = vec![Expr::Col(0), Expr::Lit(Datum::from(pos))];
            if let Some(l) = len {
                args.push(Expr::Lit(Datum::from(l)));
            }
            Expr::Fun(ScalarFun::Substr, args).eval(&r).unwrap()
        };
        assert_eq!(sub(2, None), Datum::from("bcdef"));
        assert_eq!(sub(2, Some(3)), Datum::from("bcd"));
        assert_eq!(sub(-2, None), Datum::from("ef"));
        assert_eq!(sub(0, Some(2)), Datum::from("ab"));
    }

    #[test]
    fn json_exprs_on_rows() {
        let r = row();
        let jv = Expr::json_value(2, parse_path("$.price").unwrap(), SqlType::Number);
        assert_eq!(jv.eval(&r).unwrap(), Datum::from(99.5));
        let je = Expr::json_exists(2, parse_path("$?(@.id == 5)").unwrap());
        assert_eq!(je.eval(&r).unwrap(), Datum::Bool(true));
        // JSON op on a scalar column is a planning error
        let bad = Expr::json_value(0, parse_path("$.x").unwrap(), SqlType::Any);
        assert!(bad.eval(&r).is_err());
    }

    #[test]
    fn nvl_and_concat() {
        let r = row();
        let e = Expr::Fun(ScalarFun::Nvl, vec![Expr::Col(3), Expr::Lit(Datum::from("dflt"))]);
        assert_eq!(e.eval(&r).unwrap(), Datum::from("dflt"));
        let c = Expr::Fun(
            ScalarFun::Concat,
            vec![Expr::Lit(Datum::from("a")), Expr::Lit(Datum::from("b"))],
        );
        assert_eq!(c.eval(&r).unwrap(), Datum::from("ab"));
    }

    #[test]
    fn clone_preserves_behaviour() {
        let r = row();
        let jv = Expr::json_value(2, parse_path("$.id").unwrap(), SqlType::Number);
        let jv2 = jv.clone();
        assert_eq!(jv.eval(&r).unwrap(), jv2.eval(&r).unwrap());
    }

    #[test]
    fn exprs_are_send_sync_and_clones_share_scratch_slots() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Expr>();
        assert_send_sync::<EvalScratch>();
        let r = row();
        let jv = Expr::json_value(2, parse_path("$.price").unwrap(), SqlType::Number);
        let mut scratch = EvalScratch::new();
        for _ in 0..3 {
            assert_eq!(jv.eval_with(&r, &mut scratch).unwrap(), Datum::from(99.5));
        }
        // the clone shares the compiled path, hence the evaluator slot
        let jv2 = jv.clone();
        assert_eq!(jv2.eval_with(&r, &mut scratch).unwrap(), Datum::from(99.5));
        assert_eq!(scratch.evaluators.len(), 1, "one evaluator per distinct path");
        // a distinct path gets its own slot
        let other = Expr::json_value(2, parse_path("$.id").unwrap(), SqlType::Number);
        other.eval_with(&r, &mut scratch).unwrap();
        assert_eq!(scratch.evaluators.len(), 2);
    }
}

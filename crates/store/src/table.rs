//! Tables: rows, the insert pipeline with IS JSON validation and
//! DataGuide/search-index maintenance, virtual columns, and key indexes.

use std::collections::HashMap;
use std::fmt;

use fsdm_dataguide::{structure_signature, DataGuide};
use fsdm_index::SearchIndex;
use fsdm_json::JsonValue;
use fsdm_sqljson::Datum;

use crate::expr::Expr;
use crate::imc::ImcStore;
use crate::jsonaccess::{JsonCell, JsonStorage};
use crate::schema::{ColType, ConstraintMode, TableSchema};

/// Why a statement was cancelled (the payload of
/// [`ErrorKind::Cancelled`] and the cancel token's published reason).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// An explicit cross-thread `CancelHandle::cancel`.
    User,
    /// The statement deadline passed.
    Deadline,
    /// The statement memory budget was exhausted.
    Budget,
    /// A sibling morsel worker panicked; this worker stopped early.
    PeerPanic,
}

impl CancelReason {
    /// Stable lowercase label, used in error text and the slow-query log.
    pub fn label(self) -> &'static str {
        match self {
            CancelReason::User => "user",
            CancelReason::Deadline => "deadline",
            CancelReason::Budget => "budget",
            CancelReason::PeerPanic => "peer-panic",
        }
    }
}

/// Typed classification of a [`StoreError`]. `Generic` covers ordinary
/// evaluation failures (and injected faults); the governance kinds let
/// callers distinguish a killed statement from a wrong one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Ordinary evaluation failure.
    Generic,
    /// The statement was cancelled for the given reason.
    Cancelled(CancelReason),
    /// The statement ran past its deadline.
    DeadlineExceeded,
    /// The statement memory budget was exhausted.
    BudgetExceeded,
    /// A morsel worker panicked; the panic was isolated and converted.
    WorkerPanic {
        /// Index of the morsel whose closure panicked.
        morsel: usize,
    },
}

/// Storage engine error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// Description of the failure.
    pub message: String,
    /// Typed classification (governance kills, isolated panics, …).
    pub kind: ErrorKind,
}

impl StoreError {
    /// Build an ordinary ([`ErrorKind::Generic`]) error.
    pub fn new(message: impl Into<String>) -> Self {
        StoreError { message: message.into(), kind: ErrorKind::Generic }
    }

    /// Build an error with an explicit typed kind.
    pub fn with_kind(message: impl Into<String>, kind: ErrorKind) -> Self {
        StoreError { message: message.into(), kind }
    }

    /// True for governance kills (cancel / deadline / budget): failures a
    /// peer's fault or the user's own limit caused, which yield to any
    /// co-occurring primary error when the executor picks what to report.
    pub fn is_governance(&self) -> bool {
        matches!(
            self.kind,
            ErrorKind::Cancelled(_) | ErrorKind::DeadlineExceeded | ErrorKind::BudgetExceeded
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store error: {}", self.message)
    }
}

impl std::error::Error for StoreError {}

/// One stored cell: a SQL scalar or a JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Scalar.
    D(Datum),
    /// JSON document in its physical storage form.
    J(JsonCell),
}

/// A table row.
pub type Row = Vec<Cell>;

/// A value supplied to `insert`: scalars as datums, JSON as text (the wire
/// form an application sends).
#[derive(Debug, Clone)]
pub enum InsertValue {
    /// Scalar value.
    Datum(Datum),
    /// JSON document text.
    Json(String),
}

impl From<Datum> for InsertValue {
    fn from(d: Datum) -> Self {
        InsertValue::Datum(d)
    }
}
impl From<i64> for InsertValue {
    fn from(v: i64) -> Self {
        InsertValue::Datum(Datum::from(v))
    }
}
impl From<&str> for InsertValue {
    fn from(v: &str) -> Self {
        InsertValue::Datum(Datum::from(v))
    }
}

/// A named virtual column defined by an expression over the base row
/// (§3.3.1 / §5.2.1 — typically `JSON_VALUE(jcol, path)`).
#[derive(Debug, Clone)]
pub struct VirtualColumn {
    /// Column name.
    pub name: String,
    /// Defining expression (over base columns).
    pub expr: Expr,
}

/// A heap table.
pub struct Table {
    /// Schema.
    pub schema: TableSchema,
    /// Row storage.
    pub rows: Vec<Row>,
    /// Virtual columns appended after base columns in scan output.
    pub virtual_columns: Vec<VirtualColumn>,
    /// Persistent DataGuide (maintained when a JSON column has
    /// `IsJsonWithDataGuide`).
    pub dataguide: DataGuide,
    /// Structure signatures seen (the §3.2.1 fast path).
    seen_signatures: std::collections::HashSet<u64>,
    /// Count of inserts whose DataGuide work was skipped by the signature
    /// fast path.
    pub guide_fast_path_hits: u64,
    /// Optional full search index (JSON search index of §3.2).
    pub search_index: Option<SearchIndex>,
    /// Equality indexes: column position → value → row ids.
    pub key_indexes: HashMap<usize, HashMap<Datum, Vec<usize>>>,
    /// In-memory store (§5.2).
    pub imc: ImcStore,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            virtual_columns: Vec::new(),
            dataguide: DataGuide::new(),
            seen_signatures: Default::default(),
            guide_fast_path_hits: 0,
            search_index: None,
            key_indexes: HashMap::new(),
            imc: ImcStore::default(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total stored bytes (Figure 4's storage-size comparison): scalar
    /// cells cost their textual width, JSON cells their encoded size.
    pub fn storage_size(&self) -> usize {
        let data: usize = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|c| match c {
                        Cell::D(d) => d.to_text().len().max(1),
                        Cell::J(j) => j.stored_size(),
                    })
                    .sum::<usize>()
            })
            .sum();
        // key indexes cost roughly one entry (value + row id) per row
        let index: usize = self
            .key_indexes
            .values()
            .map(|ix| ix.values().map(|v| v.len() * 16).sum::<usize>())
            .sum();
        data + index
    }

    /// Insert a row. JSON columns go through the §3.2.1 pipeline:
    /// validation per the column's [`ConstraintMode`], then DataGuide /
    /// search-index maintenance.
    pub fn insert(&mut self, values: Vec<InsertValue>) -> Result<usize, StoreError> {
        if values.len() != self.schema.width() {
            return Err(StoreError::new(format!(
                "expected {} values, got {}",
                self.schema.width(),
                values.len()
            )));
        }
        let mut row = Vec::with_capacity(values.len());
        let mut guide_docs: Vec<JsonValue> = Vec::new();
        for (spec, value) in self.schema.columns.iter().zip(values) {
            match (&spec.ty, value) {
                (ColType::Json(storage), InsertValue::Json(text)) => {
                    match spec.constraint {
                        ConstraintMode::None => {
                            // no IS JSON check: bytes stored as-is; only
                            // valid for text storage (binary formats
                            // require a parse by construction)
                            match storage {
                                JsonStorage::Text => {
                                    row.push(Cell::J(JsonCell::raw_text(text)));
                                }
                                _ => {
                                    let doc = fsdm_json::parse(&text)
                                        .map_err(|e| StoreError::new(e.to_string()))?;
                                    row.push(Cell::J(JsonCell::encode(&doc, *storage)?));
                                }
                            }
                        }
                        ConstraintMode::IsJson => {
                            let doc = fsdm_json::parse(&text)
                                .map_err(|e| StoreError::new(format!("IS JSON violated: {e}")))?;
                            row.push(Cell::J(encode_preferring_text(&doc, text, *storage)?));
                        }
                        ConstraintMode::IsJsonWithDataGuide => {
                            let doc = fsdm_json::parse(&text)
                                .map_err(|e| StoreError::new(format!("IS JSON violated: {e}")))?;
                            row.push(Cell::J(encode_preferring_text(&doc, text, *storage)?));
                            guide_docs.push(doc);
                        }
                    }
                }
                (ColType::Json(_), InsertValue::Datum(_)) => {
                    return Err(StoreError::new(format!(
                        "column {} requires a JSON value",
                        spec.name
                    )))
                }
                (_, InsertValue::Json(_)) => {
                    return Err(StoreError::new(format!(
                        "column {} is not a JSON column",
                        spec.name
                    )))
                }
                (ty, InsertValue::Datum(d)) => {
                    let sql_ty = ty.sql_type().expect("scalar type");
                    let coerced = d.coerce(sql_ty).ok_or_else(|| {
                        StoreError::new(format!("value does not fit column {}", spec.name))
                    })?;
                    row.push(Cell::D(coerced));
                }
            }
        }
        let row_id = self.rows.len();
        // maintain key indexes
        for (col, index) in self.key_indexes.iter_mut() {
            if let Some(Cell::D(d)) = row.get(*col) {
                index.entry(d.clone()).or_default().push(row_id);
            }
        }
        // DataGuide maintenance with the structure-signature fast path
        for doc in &guide_docs {
            let sig = structure_signature(doc);
            if self.seen_signatures.insert(sig) {
                self.dataguide.add_document(doc);
            } else {
                self.dataguide.doc_count += 1;
                self.guide_fast_path_hits += 1;
                fsdm_obs::counter!(fsdm_obs::catalog::STORE_INSERT_GUIDE_FAST_PATH).inc();
            }
            if let Some(ix) = &mut self.search_index {
                ix.insert(row_id as u64, doc);
            }
        }
        self.rows.push(row);
        Ok(row_id)
    }

    /// Create an equality index on a scalar column (PK/FK acceleration for
    /// the relational baseline).
    pub fn create_key_index(&mut self, column: &str) -> Result<(), StoreError> {
        let col = self
            .schema
            .col_index(column)
            .ok_or_else(|| StoreError::new(format!("no column {column}")))?;
        let mut index: HashMap<Datum, Vec<usize>> = HashMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            if let Some(Cell::D(d)) = row.get(col) {
                index.entry(d.clone()).or_default().push(i);
            }
        }
        self.key_indexes.insert(col, index);
        Ok(())
    }

    /// Attach (and build) a JSON search index over the first JSON column.
    pub fn create_search_index(&mut self) -> Result<(), StoreError> {
        let col = self
            .schema
            .columns
            .iter()
            .position(|c| matches!(c.ty, ColType::Json(_)))
            .ok_or_else(|| StoreError::new("no JSON column to index"))?;
        let mut ix = SearchIndex::new();
        for (i, row) in self.rows.iter().enumerate() {
            if let Some(Cell::J(j)) = row.get(col) {
                let doc = j.decode()?;
                ix.insert(i as u64, &doc);
            }
        }
        self.search_index = Some(ix);
        Ok(())
    }

    /// Register a virtual column (appears after base columns in scans).
    pub fn add_virtual_column(&mut self, name: impl Into<String>, expr: Expr) {
        self.virtual_columns.push(VirtualColumn { name: name.into(), expr });
    }

    /// Output column names of a scan (base + virtual).
    pub fn scan_column_names(&self) -> Vec<String> {
        self.schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .chain(self.virtual_columns.iter().map(|v| v.name.clone()))
            .collect()
    }

    /// Morsel partition over this table's heap rows: the unit of work the
    /// parallel executor dispatches to scan workers. Heap rows, OSON-IMC
    /// bytes, and VC-IMC vectors all chunk through the same
    /// [`crate::parallel::morsels`] splitter, so a scan's morsel structure
    /// is identical no matter which physical representation serves it.
    pub fn morsels(&self, target_rows: usize) -> impl Iterator<Item = crate::parallel::RowRange> {
        crate::parallel::morsels(self.rows.len(), target_rows)
    }

    /// Position of a scan output column (base or virtual).
    pub fn scan_col_index(&self, name: &str) -> Option<usize> {
        self.schema.col_index(name).or_else(|| {
            self.virtual_columns
                .iter()
                .position(|v| v.name == name)
                .map(|i| self.schema.width() + i)
        })
    }
}

/// For text storage keep the application's original bytes (the paper
/// stores minified text as received); binary storages re-encode.
fn encode_preferring_text(
    doc: &JsonValue,
    original: String,
    storage: JsonStorage,
) -> Result<JsonCell, StoreError> {
    match storage {
        JsonStorage::Text => Ok(JsonCell::Text(original.into())),
        other => JsonCell::encode(doc, other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnSpec;

    fn po_schema(storage: JsonStorage, mode: ConstraintMode) -> TableSchema {
        TableSchema::new(
            "po",
            vec![ColumnSpec::new("did", ColType::Number), ColumnSpec::json("jdoc", storage, mode)],
        )
    }

    #[test]
    fn insert_and_validate() {
        let mut t = Table::new(po_schema(JsonStorage::Text, ConstraintMode::IsJson));
        t.insert(vec![1i64.into(), InsertValue::Json(r#"{"a":1}"#.into())]).unwrap();
        assert_eq!(t.len(), 1);
        // malformed JSON rejected by IS JSON
        let err = t.insert(vec![2i64.into(), InsertValue::Json("{oops".into())]).unwrap_err();
        assert!(err.message.contains("IS JSON"));
    }

    #[test]
    fn no_constraint_stores_anything() {
        let mut t = Table::new(po_schema(JsonStorage::Text, ConstraintMode::None));
        t.insert(vec![1i64.into(), InsertValue::Json("{not json".into())]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn dataguide_maintenance_with_fast_path() {
        let mut t = Table::new(po_schema(JsonStorage::Text, ConstraintMode::IsJsonWithDataGuide));
        for i in 0..50 {
            t.insert(vec![(i as i64).into(), InsertValue::Json(format!(r#"{{"a":{i},"b":"x"}}"#))])
                .unwrap();
        }
        assert_eq!(t.dataguide.doc_count, 50);
        assert_eq!(t.guide_fast_path_hits, 49);
        // heterogeneous doc grows the guide
        t.insert(vec![99i64.into(), InsertValue::Json(r#"{"a":1,"new_field":true}"#.into())])
            .unwrap();
        assert!(t.dataguide.rows().iter().any(|r| r.path == "$.new_field"));
    }

    #[test]
    fn binary_storages_reencode() {
        for storage in [JsonStorage::Bson, JsonStorage::Oson] {
            let mut t = Table::new(po_schema(storage, ConstraintMode::IsJson));
            t.insert(vec![1i64.into(), InsertValue::Json(r#"{"k":[1,2,3]}"#.into())]).unwrap();
            match &t.rows[0][1] {
                Cell::J(j) => {
                    let v = j.decode().unwrap();
                    assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 3);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn scalar_type_enforcement() {
        let mut t =
            Table::new(TableSchema::new("t", vec![ColumnSpec::new("s", ColType::Varchar2(3))]));
        assert!(t.insert(vec!["abc".into()]).is_ok());
        assert!(t.insert(vec!["abcd".into()]).is_err());
        assert!(t.insert(vec![InsertValue::Json("{}".into())]).is_err());
    }

    #[test]
    fn key_index_maintenance() {
        let mut t = Table::new(TableSchema::new("t", vec![ColumnSpec::new("k", ColType::Number)]));
        t.insert(vec![5i64.into()]).unwrap();
        t.create_key_index("k").unwrap();
        t.insert(vec![5i64.into()]).unwrap();
        t.insert(vec![6i64.into()]).unwrap();
        let ix = &t.key_indexes[&0];
        assert_eq!(ix[&Datum::from(5i64)], vec![0, 1]);
        assert_eq!(ix[&Datum::from(6i64)], vec![2]);
    }

    #[test]
    fn search_index_built_from_existing_rows() {
        let mut t = Table::new(po_schema(JsonStorage::Oson, ConstraintMode::IsJson));
        t.insert(vec![1i64.into(), InsertValue::Json(r#"{"tag":"red"}"#.into())]).unwrap();
        t.insert(vec![2i64.into(), InsertValue::Json(r#"{"tag":"blue"}"#.into())]).unwrap();
        t.create_search_index().unwrap();
        let ix = t.search_index.as_ref().unwrap();
        assert_eq!(ix.docs_with_value("$.tag", "blue"), vec![1]);
    }

    #[test]
    fn virtual_columns_in_scan_schema() {
        use fsdm_sqljson::{parse_path, SqlType};
        let mut t = Table::new(po_schema(JsonStorage::Text, ConstraintMode::IsJson));
        t.add_virtual_column(
            "jdoc$a",
            Expr::json_value(1, parse_path("$.a").unwrap(), SqlType::Number),
        );
        assert_eq!(t.scan_column_names(), vec!["did", "jdoc", "jdoc$a"]);
        assert_eq!(t.scan_col_index("jdoc$a"), Some(2));
    }
}

//! The in-memory store (§5.2).
//!
//! Two complementary caches per table:
//!
//! * **OSON-IMC** (§5.2.2): for a JSON column stored as *text* on disk, a
//!   hidden OSON encoding of every document is kept in memory; scans
//!   transparently substitute the binary for the text so "SQL/JSON queries
//!   over the JSON textual column are transparently rewritten to access
//!   the OSON virtual column instead".
//! * **VC-IMC** (§5.2.1): virtual columns (typically
//!   `JSON_VALUE(jcol, path)`) are materialized into typed column vectors
//!   — numbers as `f64` with a null slot, strings dictionary-encoded — so
//!   predicates, aggregations and projections on those columns never touch
//!   the JSON at all.

use std::collections::HashMap;
use std::sync::Arc;

use fsdm_sqljson::Datum;

use crate::jsonaccess::JsonCell;
use crate::table::{Cell, StoreError, Table};

/// A typed in-memory column vector.
#[derive(Debug, Clone)]
pub enum ColumnVector {
    /// Numeric column (`None` = SQL NULL).
    Numbers(Vec<Option<f64>>),
    /// Dictionary-encoded string column. The dictionary is sorted, so
    /// code order is string order: range kernels compare codes directly
    /// and equality probes binary-search the dictionary.
    Strings {
        /// Distinct values, ascending.
        dict: Vec<String>,
        /// Per-row dictionary codes.
        codes: Vec<Option<u32>>,
    },
    /// Boolean column.
    Bools(Vec<Option<bool>>),
}

/// A borrowed view of one vector slot: what [`ColumnVector::get`] returns
/// without the owned `Datum` (and, for dictionary entries, without the
/// `String` clone).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VectorSlot<'a> {
    /// SQL NULL.
    Null,
    /// A numeric value.
    Num(f64),
    /// A dictionary entry, borrowed from the vector.
    Str(&'a str),
    /// A boolean value.
    Bool(bool),
}

impl VectorSlot<'_> {
    /// Materialize the slot as an owned datum.
    pub fn to_datum(self) -> Datum {
        match self {
            VectorSlot::Null => Datum::Null,
            VectorSlot::Num(x) => Datum::from(x),
            VectorSlot::Str(s) => Datum::Str(s.to_string()),
            VectorSlot::Bool(b) => Datum::Bool(b),
        }
    }
}

impl ColumnVector {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVector::Numbers(v) => v.len(),
            ColumnVector::Strings { codes, .. } => codes.len(),
            ColumnVector::Bools(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read one row back as a datum (owned; allocates for dictionary
    /// entries — scan-path callers prefer [`ColumnVector::slot`]).
    pub fn get(&self, row: usize) -> Datum {
        self.slot(row).to_datum()
    }

    /// Borrowed accessor: read one row without materializing a `Datum`.
    pub fn slot(&self, row: usize) -> VectorSlot<'_> {
        match self {
            ColumnVector::Numbers(v) => match v[row] {
                Some(x) => VectorSlot::Num(x),
                None => VectorSlot::Null,
            },
            ColumnVector::Strings { dict, codes } => match codes[row] {
                Some(c) => VectorSlot::Str(&dict[c as usize]),
                None => VectorSlot::Null,
            },
            ColumnVector::Bools(v) => match v[row] {
                Some(b) => VectorSlot::Bool(b),
                None => VectorSlot::Null,
            },
        }
    }

    /// Build from a sequence of datums, choosing the densest representation
    /// for the observed values.
    pub fn from_datums(values: &[Datum]) -> ColumnVector {
        let mut any_num = false;
        let mut any_str = false;
        let mut any_bool = false;
        for v in values {
            match v {
                Datum::Num(_) => any_num = true,
                Datum::Str(_) => any_str = true,
                Datum::Bool(_) => any_bool = true,
                Datum::Null => {}
            }
        }
        if any_str || (!any_num && !any_bool) {
            // sorted dictionary: code order == string order, which is what
            // lets range kernels compare codes and equality probes
            // binary-search instead of scanning
            let mut dict: Vec<String> =
                values.iter().filter(|v| !v.is_null()).map(|v| v.to_text()).collect();
            dict.sort();
            dict.dedup();
            let codes = values
                .iter()
                .map(|v| {
                    if v.is_null() {
                        None
                    } else {
                        let s = v.to_text();
                        Some(dict.binary_search(&s).expect("dict covers all values") as u32)
                    }
                })
                .collect();
            ColumnVector::Strings { dict, codes }
        } else if any_num {
            ColumnVector::Numbers(values.iter().map(|v| v.as_num().map(|n| n.to_f64())).collect())
        } else {
            ColumnVector::Bools(values.iter().map(|v| v.as_bool()).collect())
        }
    }
}

/// Per-table in-memory store state.
#[derive(Debug, Default)]
pub struct ImcStore {
    /// OSON bytes per row for one JSON column (`oson_col`).
    pub oson: Option<Vec<Option<Arc<Vec<u8>>>>>,
    /// Which column the OSON cache shadows.
    pub oson_col: Option<usize>,
    /// Materialized (virtual) column vectors, keyed by scan column index.
    /// Shared (`Arc`) so batch pipelines can borrow columns without
    /// holding the table borrow across kernel boundaries.
    pub vectors: HashMap<usize, Arc<ColumnVector>>,
}

impl ImcStore {
    /// Drop all cached state (back to pure disk/TEXT mode).
    pub fn clear(&mut self) {
        self.oson = None;
        self.oson_col = None;
        self.vectors.clear();
    }

    /// Total bytes held by the OSON cache.
    pub fn oson_bytes(&self) -> usize {
        self.oson.as_ref().map(|v| v.iter().flatten().map(|b| b.len()).sum()).unwrap_or(0)
    }

    /// Morsel partition over the OSON cache (or the largest materialized
    /// column vector when only VC-IMC is populated): the same chunking the
    /// executor uses for heap rows, so OSON-IMC byte scans and VC-IMC
    /// vector scans parallelize identically.
    pub fn morsels(&self, target_rows: usize) -> impl Iterator<Item = crate::parallel::RowRange> {
        let total = match &self.oson {
            Some(cache) => cache.len(),
            None => self.vectors.values().map(|v| v.len()).max().unwrap_or(0),
        };
        crate::parallel::morsels(total, target_rows)
    }
}

impl Table {
    /// Populate the hidden OSON column cache for the first JSON column
    /// (OSON-IMC mode). Text rows are parsed and encoded once here — the
    /// implicit `OSON()` constructor invocation of §5.2.2 at load time.
    pub fn populate_oson_imc(&mut self) -> Result<(), StoreError> {
        let col = self
            .schema
            .columns
            .iter()
            .position(|c| matches!(c.ty, crate::schema::ColType::Json(_)))
            .ok_or_else(|| StoreError::new("no JSON column"))?;
        let mut cache: Vec<Option<Arc<Vec<u8>>>> = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            match row.get(col) {
                Some(Cell::J(JsonCell::Oson(b))) => cache.push(Some(b.clone())),
                Some(Cell::J(j)) => {
                    let doc = j.decode()?;
                    let bytes =
                        fsdm_oson::encode(&doc).map_err(|e| StoreError::new(e.to_string()))?;
                    cache.push(Some(Arc::new(bytes)));
                }
                _ => cache.push(None),
            }
        }
        self.imc.oson = Some(cache);
        self.imc.oson_col = Some(col);
        Ok(())
    }

    /// Materialize the listed scan columns (base or virtual) into IMC
    /// column vectors (VC-IMC mode).
    pub fn populate_vc_imc(&mut self, columns: &[&str]) -> Result<(), StoreError> {
        for name in columns {
            let idx = self
                .scan_col_index(name)
                .ok_or_else(|| StoreError::new(format!("no column {name}")))?;
            let width = self.schema.width();
            let mut vals = Vec::with_capacity(self.rows.len());
            // one scratch across the whole population pass: compiled-path
            // look-back caches stay warm from row to row
            let mut scratch = crate::expr::EvalScratch::new();
            for (i, row) in self.rows.iter().enumerate() {
                let d = if idx < width {
                    match &row[idx] {
                        Cell::D(d) => d.clone(),
                        Cell::J(j) => Datum::Str(j.decode_to_text()),
                    }
                } else {
                    let vc = &self.virtual_columns[idx - width];
                    // evaluate against the IMC-substituted row so VC
                    // population itself benefits from the OSON cache
                    let row_imc = self.imc_row(row, Some(i));
                    vc.expr.eval_with(&row_imc, &mut scratch)?
                };
                vals.push(d);
            }
            self.imc.vectors.insert(idx, Arc::new(ColumnVector::from_datums(&vals)));
        }
        Ok(())
    }

    /// Apply the OSON-IMC substitution to one row (used by scans).
    pub fn imc_row(&self, row: &crate::table::Row, row_id: Option<usize>) -> crate::table::Row {
        match (&self.imc.oson, self.imc.oson_col, row_id) {
            (Some(cache), Some(col), Some(id)) => {
                let mut out = row.clone();
                if let Some(Some(bytes)) = cache.get(id) {
                    out[col] = Cell::J(JsonCell::Oson(bytes.clone()));
                }
                out
            }
            _ => row.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonaccess::JsonStorage;
    use crate::schema::{ColType, ColumnSpec, ConstraintMode, TableSchema};
    use crate::table::InsertValue;
    use fsdm_sqljson::{parse_path, SqlType};

    fn text_table(n: usize) -> Table {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("id", ColType::Number),
                ColumnSpec::json("j", JsonStorage::Text, ConstraintMode::IsJson),
            ],
        ));
        for i in 0..n {
            t.insert(vec![
                (i as i64).into(),
                InsertValue::Json(format!(r#"{{"v":{i},"s":"row{i}"}}"#)),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn oson_imc_population() {
        let mut t = text_table(10);
        assert_eq!(t.imc.oson_bytes(), 0);
        t.populate_oson_imc().unwrap();
        assert!(t.imc.oson_bytes() > 0);
        // rows on disk remain text; the substitution happens per scan row
        assert!(matches!(&t.rows[0][1], Cell::J(JsonCell::Text(_))));
        let sub = t.imc_row(&t.rows[0], Some(0));
        assert!(matches!(&sub[1], Cell::J(JsonCell::Oson(_))));
        t.imc.clear();
        assert_eq!(t.imc.oson_bytes(), 0);
    }

    #[test]
    fn vc_imc_vectors() {
        let mut t = text_table(20);
        t.add_virtual_column(
            "j$v",
            crate::expr::Expr::json_value(1, parse_path("$.v").unwrap(), SqlType::Number),
        );
        t.add_virtual_column(
            "j$s",
            crate::expr::Expr::json_value(1, parse_path("$.s").unwrap(), SqlType::Varchar2(16)),
        );
        t.populate_vc_imc(&["j$v", "j$s"]).unwrap();
        let vi = t.scan_col_index("j$v").unwrap();
        let si = t.scan_col_index("j$s").unwrap();
        match &*t.imc.vectors[&vi] {
            ColumnVector::Numbers(v) => {
                assert_eq!(v.len(), 20);
                assert_eq!(v[7], Some(7.0));
            }
            other => panic!("{other:?}"),
        }
        match &*t.imc.vectors[&si] {
            ColumnVector::Strings { dict, codes } => {
                assert_eq!(codes.len(), 20);
                assert_eq!(dict.len(), 20);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(t.imc.vectors[&vi].get(3), Datum::from(3.0));
    }

    #[test]
    fn dictionaries_are_sorted_and_codes_remapped() {
        let vals: Vec<Datum> =
            ["pear", "apple", "plum", "apple", "fig"].iter().map(|&s| Datum::from(s)).collect();
        match ColumnVector::from_datums(&vals) {
            ColumnVector::Strings { dict, codes } => {
                assert_eq!(dict, vec!["apple", "fig", "pear", "plum"]);
                let decoded: Vec<&str> =
                    codes.iter().map(|c| dict[c.unwrap() as usize].as_str()).collect();
                assert_eq!(decoded, vec!["pear", "apple", "plum", "apple", "fig"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn borrowed_slot_matches_owned_get() {
        let v = ColumnVector::from_datums(&[Datum::from("b"), Datum::Null, Datum::from("a")]);
        assert_eq!(v.slot(0), VectorSlot::Str("b"));
        assert_eq!(v.slot(1), VectorSlot::Null);
        for i in 0..3 {
            assert_eq!(v.slot(i).to_datum(), v.get(i), "row {i}");
        }
        let n = ColumnVector::from_datums(&[Datum::from(2i64), Datum::Null]);
        assert_eq!(n.slot(0), VectorSlot::Num(2.0));
        assert_eq!(n.slot(0).to_datum(), Datum::from(2i64));
    }

    #[test]
    fn vector_type_inference() {
        let nums = ColumnVector::from_datums(&[Datum::from(1i64), Datum::Null]);
        assert!(matches!(nums, ColumnVector::Numbers(_)));
        let mixed = ColumnVector::from_datums(&[Datum::from(1i64), Datum::from("x")]);
        assert!(matches!(mixed, ColumnVector::Strings { .. }));
        let bools = ColumnVector::from_datums(&[Datum::Bool(true), Datum::Null]);
        assert!(matches!(bools, ColumnVector::Bools(_)));
        assert_eq!(bools.get(1), Datum::Null);
    }

    #[test]
    fn dictionary_encoding_dedups() {
        let vals: Vec<Datum> =
            (0..100).map(|i| Datum::from(if i % 2 == 0 { "a" } else { "b" })).collect();
        match ColumnVector::from_datums(&vals) {
            ColumnVector::Strings { dict, .. } => assert_eq!(dict.len(), 2),
            other => panic!("{other:?}"),
        }
    }
}

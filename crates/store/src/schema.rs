//! Table schemas: column types, JSON storage choices, constraints.

use fsdm_sqljson::SqlType;

use crate::jsonaccess::JsonStorage;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// Oracle-style NUMBER.
    Number,
    /// Bounded string.
    Varchar2(usize),
    /// Boolean.
    Boolean,
    /// A JSON document column with a physical storage format.
    Json(JsonStorage),
}

impl ColType {
    /// The SQL scalar type scalars of this column coerce to (JSON columns
    /// have no scalar type).
    pub fn sql_type(&self) -> Option<SqlType> {
        match self {
            ColType::Number => Some(SqlType::Number),
            ColType::Varchar2(n) => Some(SqlType::Varchar2(*n)),
            ColType::Boolean => Some(SqlType::Boolean),
            ColType::Json(_) => None,
        }
    }
}

/// Validation performed on JSON column writes (Figure 7's three modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConstraintMode {
    /// No `IS JSON` constraint: bytes are stored unvalidated.
    None,
    /// `IS JSON`: the document is parsed/validated on insert.
    #[default]
    IsJson,
    /// `IS JSON` + persistent DataGuide maintenance (and search index when
    /// attached).
    IsJsonWithDataGuide,
}

/// One column definition.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name (case-sensitive as given).
    pub name: String,
    /// Data type.
    pub ty: ColType,
    /// Constraint on JSON columns.
    pub constraint: ConstraintMode,
}

impl ColumnSpec {
    /// A scalar column.
    pub fn new(name: impl Into<String>, ty: ColType) -> Self {
        ColumnSpec { name: name.into(), ty, constraint: ConstraintMode::None }
    }

    /// A JSON column with the given storage and constraint mode.
    pub fn json(name: impl Into<String>, storage: JsonStorage, constraint: ConstraintMode) -> Self {
        ColumnSpec { name: name.into(), ty: ColType::Json(storage), constraint }
    }
}

/// A table schema.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in position order.
    pub columns: Vec<ColumnSpec>,
}

impl TableSchema {
    /// Build a schema.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnSpec>) -> Self {
        TableSchema { name: name.into(), columns }
    }

    /// Position of a column by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = TableSchema::new(
            "po",
            vec![
                ColumnSpec::new("did", ColType::Number),
                ColumnSpec::json("jdoc", JsonStorage::Text, ConstraintMode::IsJson),
            ],
        );
        assert_eq!(s.col_index("did"), Some(0));
        assert_eq!(s.col_index("jdoc"), Some(1));
        assert_eq!(s.col_index("nope"), None);
        assert_eq!(s.width(), 2);
    }

    #[test]
    fn sql_types() {
        assert_eq!(ColType::Number.sql_type(), Some(SqlType::Number));
        assert_eq!(ColType::Varchar2(8).sql_type(), Some(SqlType::Varchar2(8)));
        assert_eq!(ColType::Json(JsonStorage::Oson).sql_type(), None);
    }
}

//! Morsel-driven parallel execution (the scaffolding under
//! [`crate::Database`]'s batch executor).
//!
//! The executor splits every data-parallel operator into fixed-size
//! **morsels** — contiguous [`RowRange`]s of the operator's input — and
//! runs them on `std::thread::scope` workers that claim morsel indices
//! from a shared atomic counter. Results come back **in morsel-index
//! order**, so the concatenated output is identical at every degree
//! (including `degree = 1`, which runs inline on the calling thread with
//! no spawn at all). Each worker owns an [`EvalScratch`], the per-worker
//! evaluator state that replaced the old `RefCell<PathEvaluator>` interior
//! mutability: compiled paths live immutably in the plan, cursors and
//! look-back caches live here.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use fsdm_obs::trace;

use crate::expr::EvalScratch;
use crate::govern::QueryGovernor;
use crate::table::{CancelReason, ErrorKind, StoreError};

/// Default morsel size in rows. Large enough to amortize claim/dispatch
/// overhead, small enough that a NOBENCH-scale scan yields many units of
/// work per core.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// A half-open range of row positions `[start, end)` — one morsel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowRange {
    /// First row position in the morsel.
    pub start: usize,
    /// One past the last row position.
    pub end: usize,
}

impl RowRange {
    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True when the range covers no rows.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Chunk `total` rows into morsels of (at most) `target_rows` each.
/// The chunking depends only on `total` and `target_rows` — never on the
/// degree — so the morsel structure (and with it every morsel-ordered
/// reassembly) is identical no matter how many workers run.
pub fn morsels(total: usize, target_rows: usize) -> impl Iterator<Item = RowRange> {
    let step = target_rows.max(1);
    (0..total).step_by(step).map(move |start| RowRange { start, end: (start + step).min(total) })
}

/// Per-execution settings the executor threads through every operator.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Maximum number of worker threads a data-parallel pipeline may use.
    pub degree: usize,
    /// Target rows per morsel.
    pub morsel_rows: usize,
    /// Whether this execution records a [`crate::QueryProfile`].
    pub profile: bool,
    /// The statement's governance bundle (cancel token, deadline, memory
    /// budget), shared by every worker of every pipeline.
    pub governor: Arc<QueryGovernor>,
}

impl ExecContext {
    /// A strictly serial context (degree 1) — today's single-threaded
    /// behavior, used by callers that must not spawn.
    pub fn serial() -> ExecContext {
        ExecContext {
            degree: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            profile: false,
            governor: Arc::new(QueryGovernor::unlimited()),
        }
    }
}

/// What a pipeline actually used, reported into `QueryProfile` rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParStats {
    /// Peak worker count across the operator's parallel pipelines.
    pub workers: usize,
    /// Total morsels dispatched by the operator.
    pub morsels: usize,
}

/// The process-wide default degree: `FSDM_THREADS` when set to a positive
/// integer, otherwise [`std::thread::available_parallelism`].
pub fn default_degree() -> usize {
    static DEGREE: OnceLock<usize> = OnceLock::new();
    *DEGREE.get_or_init(|| {
        std::env::var("FSDM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// Run `f` over every morsel of `total` rows and return the per-morsel
/// results **in morsel-index order**.
///
/// With an effective worker count of 1 (degree 1, or fewer morsels than
/// workers would need) everything runs inline on the calling thread —
/// no spawn, no atomics on the data path — reproducing strictly serial
/// execution. Otherwise `min(degree, morsel_count)` scoped workers claim
/// morsel indices via `fetch_add` until the supply is exhausted; each
/// worker carries one [`EvalScratch`] across all the morsels it claims so
/// compiled-path look-back caches warm up per worker.
///
/// **Governance.** The context's [`QueryGovernor`] is checkpointed before
/// every morsel, so a cancellation, deadline, or budget kill stops the
/// pipeline within one morsel of work per worker and surfaces as a typed
/// [`StoreError`].
///
/// **Panic isolation.** A panic inside `f` is caught (on the serial path
/// too), converted into a typed [`ErrorKind::WorkerPanic`] error carrying
/// the failing morsel index, and published to the sibling workers as a
/// peer-panic cancellation so they wind down at their next checkpoint.
/// The caller gets an ordinary `Err`; no worker unwinds across the scope,
/// so the `Database` stays fully usable afterwards.
///
/// **Errors are deterministic.** The error returned is the one from the
/// lowest-indexed failing morsel (the same morsel — and row — a serial
/// run would have stopped at), with one refinement: *governance* failures
/// (cancel / deadline / budget) are echoes of a kill, so a primary error
/// — a real evaluation failure or an isolated panic — wins over any
/// governance error regardless of morsel order. Which worker observed a
/// cancellation first can race; which morsel first produced a primary
/// error cannot.
pub fn run_morsels<T, F>(
    ctx: &ExecContext,
    total: usize,
    stats: &mut ParStats,
    f: F,
) -> Result<Vec<T>, StoreError>
where
    T: Send,
    F: Fn(RowRange, &mut EvalScratch) -> Result<T, StoreError> + Sync,
{
    let ranges: Vec<RowRange> = morsels(total, ctx.morsel_rows).collect();
    let workers = ctx.degree.min(ranges.len()).max(1);
    stats.workers = stats.workers.max(workers);
    stats.morsels += ranges.len();
    fsdm_obs::counter!(fsdm_obs::catalog::EXEC_MORSEL_COUNT).add(ranges.len() as u64);
    let mut pipeline = trace::span(fsdm_obs::catalog::SPAN_EXEC_PIPELINE);
    pipeline.record_args(|| format!("workers={workers} morsels={}", ranges.len()));
    if workers == 1 {
        let mut scratch = EvalScratch::new();
        let mut out = Vec::with_capacity(ranges.len());
        for (i, range) in ranges.into_iter().enumerate() {
            ctx.governor.checkpoint()?;
            let t = Instant::now();
            let v = run_guarded(&ctx.governor, i, range, &mut scratch, &f);
            record_morsel(range, t);
            out.push(v?);
        }
        return Ok(out);
    }
    let pipeline_id = pipeline.id();
    let next = AtomicUsize::new(0);
    let sentry = oracle::RaceOracle::new(ranges.len());
    let per_worker: Vec<Vec<(usize, Result<T, StoreError>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    sentry.worker_enter();
                    let busy = Instant::now();
                    // explicit cross-thread parent: this lane's spans hang
                    // under the pipeline span on the coordinating thread
                    let worker =
                        trace::span_with_parent(fsdm_obs::catalog::SPAN_EXEC_WORKER, pipeline_id);
                    let mut scratch = EvalScratch::new();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(range) = ranges.get(i).copied() else { break };
                        sentry.claim(i);
                        if let Err(e) = ctx.governor.checkpoint() {
                            // a kill echo, recorded so the claimed morsel
                            // still has a slot; the drain ranks it below
                            // any primary error
                            local.push((i, Err(e)));
                            break;
                        }
                        let t = Instant::now();
                        let v = run_guarded(&ctx.governor, i, range, &mut scratch, &f);
                        record_morsel(range, t);
                        let failed = v.is_err();
                        local.push((i, v));
                        if failed {
                            break;
                        }
                    }
                    fsdm_obs::histogram!(fsdm_obs::catalog::EXEC_WORKER_BUSY_NS)
                        .record(busy.elapsed().as_nanos() as u64);
                    sentry.worker_exit();
                    // close the worker span, then push this lane's buffered
                    // spans into the session sink: the scope join orders the
                    // closure, not this thread's TLS destructors, so a
                    // session finishing right after the join must not race
                    // the deferred flush
                    drop(worker);
                    trace::flush_local();
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    // reassemble in morsel-index order — the determinism barrier
    let mut slots: Vec<Option<Result<T, StoreError>>> = Vec::with_capacity(ranges.len());
    slots.resize_with(ranges.len(), || None);
    for (i, v) in per_worker.into_iter().flatten() {
        if let Some(slot) = slots.get_mut(i) {
            *slot = Some(v);
        }
    }
    // error election before any merge: the lowest-indexed *primary* error
    // wins; governance kill echoes only surface when nothing primary
    // failed. Electing over the full slot set (rather than draining to
    // the first error) is what keeps the result deterministic when a
    // cancellation races a real failure.
    let mut primary: Option<StoreError> = None;
    let mut governance: Option<StoreError> = None;
    for slot in &slots {
        if let Some(Err(e)) = slot {
            let elected = if e.is_governance() { &mut governance } else { &mut primary };
            if elected.is_none() {
                *elected = Some(e.clone());
            }
        }
    }
    if let Some(e) = primary.or(governance) {
        return Err(e);
    }
    let mut out = Vec::with_capacity(ranges.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(v) => {
                sentry.merge(i);
                out.push(v?);
            }
            // unreachable in practice: a morsel is only left unclaimed when
            // every worker stopped on an error at a lower index, and the
            // election above already returned that error
            None => {
                return Err(StoreError::new("parallel pipeline lost a morsel result"));
            }
        }
    }
    sentry.finish();
    Ok(out)
}

/// Run one morsel with panic isolation: a panic inside `f` is caught,
/// published to sibling workers as a peer-panic cancellation, and
/// converted into a typed [`ErrorKind::WorkerPanic`] error carrying the
/// morsel index and the panic message.
///
/// `AssertUnwindSafe` is sound here: on a caught panic the worker's
/// `EvalScratch` is abandoned (the worker records the error and stops
/// claiming), the morsel's partial result is dropped, and the pipeline
/// fails the whole statement — no state that a half-run closure touched
/// is ever observed by later work.
fn run_guarded<T, F>(
    governor: &QueryGovernor,
    index: usize,
    range: RowRange,
    scratch: &mut EvalScratch,
    f: &F,
) -> Result<T, StoreError>
where
    F: Fn(RowRange, &mut EvalScratch) -> Result<T, StoreError> + Sync,
{
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut morsel = trace::span(fsdm_obs::catalog::SPAN_EXEC_MORSEL);
        morsel.record_args(|| format!("rows={}..{}", range.start, range.end));
        f(range, scratch)
    }));
    match caught {
        Ok(v) => v,
        Err(payload) => {
            governor.cancel_token().cancel(CancelReason::PeerPanic);
            fsdm_obs::counter!(fsdm_obs::catalog::GOVERN_WORKER_PANIC).inc();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("non-string panic payload");
            Err(StoreError::with_kind(
                format!("worker panicked at morsel {index}: {msg}"),
                ErrorKind::WorkerPanic { morsel: index },
            ))
        }
    }
}

/// Debug-build **race oracle**: a runtime witness of the three
/// invariants the morsel dispatcher's correctness argument rests on,
/// checked on every parallel pipeline while tests run.
///
/// 1. **Disjoint, exhaustive claims** — every morsel index is claimed by
///    exactly one worker (disjointness is asserted at claim time; on the
///    success path, exhaustiveness at [`RaceOracle::finish`]).
/// 2. **Ordered merge** — the reassembly drain consumes slots strictly
///    in morsel-index order, which is the determinism barrier that makes
///    every degree byte-identical.
/// 3. **No worker outlives the scope** — the live-worker count returns
///    to zero before the pipeline reports success.
///
/// The `claims`/`active_workers` handshakes use `AcqRel`/`Acquire`
/// orderings so a violated invariant is observed with the offending
/// morsel's writes visible; `merged` advances only on the coordinating
/// thread and stays `Relaxed`. Release builds compile against the no-op
/// shim below: same API, zero cost.
#[cfg(debug_assertions)]
mod oracle {
    use std::sync::atomic::{
        AtomicUsize,
        Ordering::{AcqRel, Acquire, Relaxed},
    };

    pub(super) struct RaceOracle {
        /// One slot per morsel; must go 0 → 1 exactly once.
        claims: Vec<AtomicUsize>,
        /// Workers inside the scope right now.
        active_workers: AtomicUsize,
        /// Morsels merged so far; merges must arrive in index order.
        merged: AtomicUsize,
    }

    impl RaceOracle {
        pub(super) fn new(morsels: usize) -> RaceOracle {
            RaceOracle {
                claims: (0..morsels).map(|_| AtomicUsize::new(0)).collect(),
                active_workers: AtomicUsize::new(0),
                merged: AtomicUsize::new(0),
            }
        }

        pub(super) fn worker_enter(&self) {
            self.active_workers.fetch_add(1, AcqRel);
        }

        pub(super) fn worker_exit(&self) {
            let live = self.active_workers.fetch_sub(1, AcqRel);
            assert!(live > 0, "race oracle: worker exited more often than it entered");
        }

        pub(super) fn claim(&self, i: usize) {
            let prev = self.claims[i].fetch_add(1, AcqRel);
            assert_eq!(prev, 0, "race oracle: morsel {i} claimed by two workers");
        }

        pub(super) fn merge(&self, i: usize) {
            let prev = self.merged.fetch_add(1, Relaxed);
            assert_eq!(prev, i, "race oracle: morsel {i} merged out of order (expected {prev})");
        }

        /// Success-path check: every morsel claimed exactly once and
        /// merged, and no worker still live.
        pub(super) fn finish(&self) {
            assert_eq!(
                self.active_workers.load(Acquire),
                0,
                "race oracle: a worker outlived its scope"
            );
            assert_eq!(
                self.merged.load(Relaxed),
                self.claims.len(),
                "race oracle: pipeline finished without merging every morsel"
            );
            for (i, claim) in self.claims.iter().enumerate() {
                assert_eq!(claim.load(Acquire), 1, "race oracle: morsel {i} never claimed");
            }
        }
    }
}

/// Release-build shim: the oracle vanishes entirely.
#[cfg(not(debug_assertions))]
mod oracle {
    pub(super) struct RaceOracle;

    impl RaceOracle {
        #[inline]
        pub(super) fn new(_morsels: usize) -> RaceOracle {
            RaceOracle
        }
        #[inline]
        pub(super) fn worker_enter(&self) {}
        #[inline]
        pub(super) fn worker_exit(&self) {}
        #[inline]
        pub(super) fn claim(&self, _i: usize) {}
        #[inline]
        pub(super) fn merge(&self, _i: usize) {}
        #[inline]
        pub(super) fn finish(&self) {}
    }
}

fn record_morsel(range: RowRange, started: Instant) {
    fsdm_obs::histogram!(fsdm_obs::catalog::EXEC_MORSEL_NS)
        .record(started.elapsed().as_nanos() as u64);
    fsdm_obs::histogram!(fsdm_obs::catalog::EXEC_MORSEL_ROWS).record(range.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(degree: usize, morsel_rows: usize) -> ExecContext {
        ExecContext {
            degree,
            morsel_rows,
            profile: false,
            governor: Arc::new(QueryGovernor::unlimited()),
        }
    }

    #[test]
    fn morsels_cover_exactly_once() {
        let ranges: Vec<RowRange> = morsels(10, 3).collect();
        assert_eq!(
            ranges,
            vec![
                RowRange { start: 0, end: 3 },
                RowRange { start: 3, end: 6 },
                RowRange { start: 6, end: 9 },
                RowRange { start: 9, end: 10 },
            ]
        );
        assert_eq!(morsels(0, 3).count(), 0);
        assert_eq!(morsels(3, 1024).count(), 1);
        // a zero target is clamped rather than looping forever
        assert_eq!(morsels(2, 0).count(), 2);
    }

    #[test]
    fn run_morsels_is_order_deterministic_at_every_degree() {
        let total = 1000;
        let expected: Vec<usize> = morsels(total, 7).map(|r| r.start).collect();
        for degree in [1, 2, 8] {
            let mut stats = ParStats::default();
            let out = run_morsels(&ctx(degree, 7), total, &mut stats, |r, _| Ok(r.start)).unwrap();
            assert_eq!(out, expected, "degree {degree}");
            assert!(stats.workers <= degree.max(1));
            assert_eq!(stats.morsels, expected.len());
        }
    }

    #[test]
    fn run_morsels_reports_lowest_failing_morsel() {
        for degree in [1, 4] {
            let mut stats = ParStats::default();
            let err = run_morsels(&ctx(degree, 10), 100, &mut stats, |r, _| {
                if r.start >= 30 {
                    Err(StoreError::new(format!("boom at {}", r.start)))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
            assert!(err.to_string().ends_with("boom at 30"), "degree {degree}: {err}");
        }
    }

    #[test]
    fn worker_panic_becomes_a_typed_error_and_the_pipeline_stays_usable() {
        fsdm_fault::silence_failpoint_panics();
        for degree in [1, 4] {
            let c = ctx(degree, 10);
            let mut stats = ParStats::default();
            let err = run_morsels(&c, 100, &mut stats, |r, _| {
                if r.start == 50 {
                    panic!("failpoint `test` injected panic");
                }
                Ok(r.start)
            })
            .unwrap_err();
            assert_eq!(err.kind, ErrorKind::WorkerPanic { morsel: 5 }, "degree {degree}: {err}");
            assert!(err.message.contains("worker panicked at morsel 5"), "degree {degree}: {err}");
            // the peer-panic cancellation is transient: cleared, the same
            // context runs clean again
            c.governor.cancel_token().clear_transient();
            let expected: Vec<usize> = morsels(100, 10).map(|r| r.start).collect();
            let out = run_morsels(&c, 100, &mut stats, |r, _| Ok(r.start)).unwrap();
            assert_eq!(out, expected, "degree {degree}: rerun after panic");
        }
    }

    #[test]
    fn primary_error_outranks_racing_governance_echoes() {
        for degree in [1, 4] {
            let c = ctx(degree, 10);
            let mut stats = ParStats::default();
            let err = run_morsels(&c, 100, &mut stats, |r, _| {
                if r.start == 30 {
                    // fail and simultaneously cancel the statement: peers
                    // may echo the kill at lower morsel indices, but the
                    // primary failure must still win the election
                    c.governor.cancel_token().cancel(CancelReason::User);
                    return Err(StoreError::new("real failure at 30"));
                }
                Ok(())
            })
            .unwrap_err();
            assert_eq!(err.kind, ErrorKind::Generic, "degree {degree}: {err}");
            assert!(err.message.contains("real failure at 30"), "degree {degree}: {err}");
        }
    }

    #[test]
    fn cancelled_context_reports_a_typed_cancellation() {
        let c = ctx(4, 10);
        c.governor.cancel_token().cancel(CancelReason::User);
        let mut stats = ParStats::default();
        let err = run_morsels(&c, 100, &mut stats, |_, _| Ok(())).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Cancelled(CancelReason::User));
        assert_eq!(err.message, "statement cancelled (user)");
    }

    #[test]
    fn empty_input_yields_no_morsels() {
        let mut stats = ParStats::default();
        let out = run_morsels(&ctx(8, 16), 0, &mut stats, |r, _| Ok(r.len())).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.morsels, 0);
    }

    // the oracle is compiled out in release builds, so its violation
    // tests only exist where it can actually panic
    #[cfg(debug_assertions)]
    mod oracle_violations {
        use super::super::oracle::RaceOracle;

        fn panics(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
            std::panic::catch_unwind(f).is_err()
        }

        #[test]
        fn a_clean_pipeline_passes() {
            let o = RaceOracle::new(3);
            o.worker_enter();
            o.claim(0);
            o.claim(1);
            o.claim(2);
            o.worker_exit();
            o.merge(0);
            o.merge(1);
            o.merge(2);
            o.finish();
        }

        #[test]
        fn double_claim_is_caught() {
            let o = RaceOracle::new(2);
            o.claim(0);
            assert!(panics(move || o.claim(0)));
        }

        #[test]
        fn out_of_order_merge_is_caught() {
            let o = RaceOracle::new(2);
            o.claim(0);
            o.claim(1);
            assert!(panics(move || o.merge(1)));
        }

        #[test]
        fn unclaimed_morsel_is_caught_at_finish() {
            let o = RaceOracle::new(2);
            o.claim(0);
            o.merge(0);
            o.merge(1);
            assert!(panics(move || o.finish()));
        }

        #[test]
        fn a_worker_that_never_exits_is_caught() {
            let o = RaceOracle::new(1);
            o.worker_enter();
            o.claim(0);
            o.merge(0);
            assert!(panics(move || o.finish()));
        }
    }
}

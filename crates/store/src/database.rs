//! The database: named tables, registered views, and the morsel-driven
//! parallel batch executor for [`Query`] plans.
//!
//! Every data-parallel operator (scan, filter, project, JSON_TABLE, the
//! hash-join build/probe, group-by evaluation, sort/window key
//! evaluation) runs per-morsel on scoped workers (see
//! [`crate::parallel`]); order-sensitive reassembly always happens in
//! morsel-index order, so results are byte-identical at every degree —
//! and `degree = 1` executes strictly serially on the calling thread.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use fsdm_sqljson::Datum;

use fsdm_fault::catalog::{
    FP_EXEC_GROUPBY_PARTIAL, FP_EXEC_JOIN_BUILD, FP_EXEC_JSONTABLE_ROW, FP_EXEC_MORSEL,
    FP_EXEC_SORT_PERMUTE,
};
use fsdm_obs::trace::{self, Trace, TraceSession};

use crate::expr::{AggFun, EvalScratch, Expr};
use crate::govern::{fault_err, CancelHandle, CancelToken, QueryGovernor};
use crate::parallel::{
    default_degree, run_morsels, ExecContext, ParStats, RowRange, DEFAULT_MORSEL_ROWS,
};
use crate::profile::{OpProfile, QueryProfile};
use crate::query::{AggSpec, Query, QueryResult, SortKey, WindowFun};
use crate::slowlog::SlowLog;
use crate::table::{Cell, ErrorKind, Row, StoreError, Table};
use crate::vector::{Batch, PredKernel, ValKernel};

/// Rough per-entry byte estimates the memory budget charges for operator
/// state. Deliberately coarse — the budget is a governor, not an
/// allocator — but monotone in the real footprint, so a limit always
/// trips before memory grows unboundedly past it.
const BUDGET_BYTES_PER_JOIN_ENTRY: u64 = 48;
/// Per evaluated datum held by group-by partials and sort key tuples.
const BUDGET_BYTES_PER_DATUM: u64 = 32;
/// Per cell of a JSON_TABLE output row buffer.
const BUDGET_BYTES_PER_CELL: u64 = 32;

/// Result of attempting a fused columnar pipeline: `Ok(None)` means the
/// plan does not lower to kernels — fall back to the row path.
type FusedResult = Result<Option<(Vec<String>, Vec<Row>)>, StoreError>;

/// An embedded database instance.
pub struct Database {
    tables: HashMap<String, Table>,
    views: HashMap<String, Query>,
    prune_dead_json_predicates: bool,
    /// Configured parallel degree; 0 means "resolve the process default"
    /// (`FSDM_THREADS`, else `available_parallelism`).
    parallelism: usize,
    /// Configured morsel size in rows; 0 means [`DEFAULT_MORSEL_ROWS`].
    morsel_rows: usize,
    /// Slow-query ring log; disarmed by default.
    slow_log: SlowLog,
    /// Whether the executor may select vectorized columnar pipelines.
    columnar: bool,
    /// Statement timeout in milliseconds; `None` = unlimited.
    statement_timeout_ms: Option<u64>,
    /// Per-statement memory budget in bytes; `None` = unlimited.
    mem_limit: Option<u64>,
    /// The shared cancel token every statement of this database runs
    /// under; handed out to [`CancelHandle`]s for cross-thread kills.
    cancel: Arc<CancelToken>,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            tables: HashMap::new(),
            views: HashMap::new(),
            prune_dead_json_predicates: false,
            parallelism: 0,
            morsel_rows: 0,
            slow_log: SlowLog::default(),
            // columnar pipeline selection is on by default: it only fires
            // where kernels reproduce row semantics exactly
            columnar: true,
            statement_timeout_ms: crate::govern::default_timeout_ms(),
            mem_limit: None,
            cancel: Arc::new(CancelToken::new()),
        }
    }
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable or disable vectorized columnar pipeline selection (on by
    /// default). With it off, every operator takes the scratch-based row
    /// path. Results are byte-identical either way — the switch exists
    /// for A/B verification and the `bench imc` row-vs-columnar
    /// comparison.
    pub fn set_columnar(&mut self, on: bool) {
        self.columnar = on;
    }

    /// Whether columnar pipeline selection is enabled.
    pub fn columnar(&self) -> bool {
        self.columnar
    }

    /// Pin the executor's parallel degree for this database. `1` forces
    /// strictly serial execution; values are clamped to at least 1. The
    /// default (until this is called) comes from the `FSDM_THREADS`
    /// environment variable, falling back to
    /// [`std::thread::available_parallelism`].
    pub fn set_parallelism(&mut self, degree: usize) {
        self.parallelism = degree.max(1);
    }

    /// The effective parallel degree queries will run with.
    pub fn parallelism(&self) -> usize {
        if self.parallelism == 0 {
            default_degree()
        } else {
            self.parallelism
        }
    }

    /// Override the morsel size in rows (mainly for tests and benchmarks;
    /// results are identical for any morsel size — only scheduling
    /// granularity changes). Clamped to at least 1.
    pub fn set_morsel_rows(&mut self, rows: usize) {
        self.morsel_rows = rows.max(1);
    }

    /// Set (or clear) the statement timeout: every subsequent statement
    /// gets a deadline of `now + ms` at execution start and dies with a
    /// typed deadline error when it runs past it.
    pub fn set_statement_timeout(&mut self, ms: Option<u64>) {
        self.statement_timeout_ms = ms;
    }

    /// The configured statement timeout in milliseconds, if any.
    pub fn statement_timeout(&self) -> Option<u64> {
        self.statement_timeout_ms
    }

    /// Set (or clear) the per-statement memory budget in bytes. Operators
    /// that materialize state (hash-join builds, group-by partials, sort
    /// key tuples, JSON_TABLE row buffers) charge against it and degrade
    /// into a typed budget error when it is exhausted.
    pub fn set_mem_limit(&mut self, bytes: Option<u64>) {
        self.mem_limit = bytes;
    }

    /// The configured per-statement memory budget in bytes, if any.
    pub fn mem_limit(&self) -> Option<u64> {
        self.mem_limit
    }

    /// A cross-thread handle that can kill this database's running
    /// statement (and, until the next statement starts, mark the token
    /// cancelled). The handle stays valid for the database's lifetime.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle::new(Arc::clone(&self.cancel))
    }

    /// The shared cancel token (statement entry points reset it).
    pub fn cancel_token(&self) -> &Arc<CancelToken> {
        &self.cancel
    }

    /// The execution context every operator of one query shares.
    fn exec_context(&self, profile: bool) -> ExecContext {
        // a caught worker panic leaves a peer-panic cancellation behind;
        // it is transient by design — clear it so the database stays
        // usable through `&self` surfaces (a pending *user* cancel is
        // preserved; `Session`'s `&mut` entry points do the full reset)
        self.cancel.clear_transient();
        ExecContext {
            degree: self.parallelism(),
            morsel_rows: if self.morsel_rows == 0 { DEFAULT_MORSEL_ROWS } else { self.morsel_rows },
            profile,
            governor: Arc::new(QueryGovernor::for_statement(
                Arc::clone(&self.cancel),
                self.statement_timeout_ms,
                self.mem_limit,
            )),
        }
    }

    /// Opt into the analyzer/optimizer handshake: scans whose filter
    /// contains a JSON predicate over a path the table's DataGuide proves
    /// empty (`fsdm_analyze::path_provably_empty`) are rewritten to
    /// constant-false scans. Off by default; results are identical either
    /// way, only the plan changes.
    pub fn set_dead_path_pruning(&mut self, on: bool) {
        self.prune_dead_json_predicates = on;
    }

    /// Whether dead-JSON-path pruning is enabled.
    pub fn dead_path_pruning(&self) -> bool {
        self.prune_dead_json_predicates
    }

    /// Register a table. If a table with the same name already exists it
    /// is replaced and the old table is returned, so callers can detect
    /// (and refuse, or log) accidental overwrites instead of silently
    /// losing data.
    pub fn add_table(&mut self, table: Table) -> Option<Table> {
        self.tables.insert(table.schema.name.clone(), table)
    }

    /// Access a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Register a named view over a plan (DataGuide-generated DMDVs land
    /// here).
    pub fn create_view(&mut self, name: impl Into<String>, plan: Query) {
        self.views.insert(name.into(), plan);
    }

    /// Look up a view plan.
    pub fn view(&self, name: &str) -> Option<&Query> {
        self.views.get(name)
    }

    /// Output column names of a plan without executing it (the SQL planner
    /// resolves identifiers against this).
    pub fn plan_columns(&self, plan: &Query) -> Result<Vec<String>, StoreError> {
        Ok(match plan {
            Query::Scan { table, .. } => self
                .tables
                .get(table)
                .ok_or_else(|| StoreError::new(format!("no table {table}")))?
                .scan_column_names(),
            Query::ViewScan { view } => {
                let plan = self
                    .views
                    .get(view)
                    .ok_or_else(|| StoreError::new(format!("no view {view}")))?;
                self.plan_columns(plan)?
            }
            Query::Filter { input, .. }
            | Query::Limit { input, .. }
            | Query::Sort { input, .. }
            | Query::Sample { input, .. } => self.plan_columns(input)?,
            Query::Project { exprs, .. } => exprs.iter().map(|(n, _)| n.clone()).collect(),
            Query::JsonTable { input, def, .. } => {
                let mut cols = self.plan_columns(input)?;
                cols.extend(def.column_names());
                cols
            }
            Query::HashJoin { left, right, .. } => {
                let mut cols = self.plan_columns(left)?;
                cols.extend(self.plan_columns(right)?);
                cols
            }
            Query::GroupBy { keys, aggs, .. } => keys
                .iter()
                .map(|(n, _)| n.clone())
                .chain(aggs.iter().map(|a| a.name.clone()))
                .collect(),
            Query::Window { input, name, .. } => {
                let mut cols = self.plan_columns(input)?;
                cols.push(name.clone());
                cols
            }
        })
    }

    /// Execute a plan to a materialized result. Plans are first run
    /// through the optimizer (notably the §6.3 JSON_EXISTS predicate
    /// pushdown into JSON_TABLE pipelines).
    pub fn execute(&self, plan: &Query) -> Result<QueryResult, StoreError> {
        self.execute_sourced(plan, None)
    }

    /// [`Database::execute`] with the originating SQL text attached, so
    /// slow-query-log entries name the statement instead of the plan
    /// root. While the slow log is armed, execution runs through the
    /// profiled path so captured entries carry a full operator tree.
    pub fn execute_sourced(
        &self,
        plan: &Query,
        source: Option<&str>,
    ) -> Result<QueryResult, StoreError> {
        if self.slow_log.armed() {
            let (result, profile) = self.execute_profiled_inner(plan, source)?;
            self.log_slow(source, plan, &profile, None);
            return Ok(result);
        }
        let optimized = crate::optimizer::optimize(self, plan.clone());
        self.execute_unoptimized(&optimized)
    }

    /// Execute a plan exactly as given (no rewrites) — used by tests and
    /// by the ablation benchmark that measures the pushdown's effect.
    pub fn execute_unoptimized(&self, plan: &Query) -> Result<QueryResult, StoreError> {
        let start = Instant::now();
        let ctx = self.exec_context(false);
        fsdm_obs::gauge!(fsdm_obs::catalog::EXEC_DEGREE).set(ctx.degree as i64);
        let mut root_span = trace::span(fsdm_obs::catalog::SPAN_STORE_QUERY);
        root_span.record_args(|| op_label(plan));
        let out = self.exec(plan, &mut None, &ctx);
        drop(root_span);
        self.finish_statement(&ctx, None, plan, out.as_ref().err(), start);
        let (columns, rows) = out?;
        fsdm_obs::counter!(fsdm_obs::catalog::STORE_EXEC_QUERIES).inc();
        fsdm_obs::histogram!(fsdm_obs::catalog::STORE_EXEC_NS)
            .record(start.elapsed().as_nanos() as u64);
        Ok(materialize(columns, rows))
    }

    /// Execute a plan (optimized, like [`Database::execute`]) while
    /// recording per-operator output cardinality and inclusive wall time.
    /// Returns the result together with an `EXPLAIN ANALYZE`-style
    /// [`QueryProfile`] mirroring the *optimized* plan shape.
    pub fn execute_profiled(
        &self,
        plan: &Query,
    ) -> Result<(QueryResult, QueryProfile), StoreError> {
        let (result, profile) = self.execute_profiled_inner(plan, None)?;
        self.log_slow(None, plan, &profile, None);
        Ok((result, profile))
    }

    /// The profiled execution core, shared by the profiled, traced and
    /// slow-log-armed surfaces; no slow-log side effects of its own.
    fn execute_profiled_inner(
        &self,
        plan: &Query,
        source: Option<&str>,
    ) -> Result<(QueryResult, QueryProfile), StoreError> {
        let start = Instant::now();
        let optimized = crate::optimizer::optimize(self, plan.clone());
        let ctx = self.exec_context(true);
        fsdm_obs::gauge!(fsdm_obs::catalog::EXEC_DEGREE).set(ctx.degree as i64);
        let mut root_span = trace::span(fsdm_obs::catalog::SPAN_STORE_QUERY);
        root_span.record_args(|| op_label(plan));
        let mut sink = Some(Vec::new());
        let out = self.exec(&optimized, &mut sink, &ctx);
        drop(root_span);
        self.finish_statement(&ctx, source, plan, out.as_ref().err(), start);
        let (columns, rows) = out?;
        let root =
            sink.and_then(|mut ops| ops.pop()).expect("profiled execution yields a root operator");
        fsdm_obs::counter!(fsdm_obs::catalog::STORE_EXEC_QUERIES).inc();
        fsdm_obs::histogram!(fsdm_obs::catalog::STORE_EXEC_NS).record(root.elapsed_ns);
        Ok((materialize(columns, rows), QueryProfile::new(root)))
    }

    /// Execute a plan under an armed [`TraceSession`]: runs the profiled
    /// path with span capture and returns the result, the operator
    /// profile, and the finished span tree. Sessions are process-global,
    /// so concurrent traced executions serialize.
    pub fn execute_traced(
        &self,
        plan: &Query,
    ) -> Result<(QueryResult, QueryProfile, Trace), StoreError> {
        self.execute_traced_sourced(plan, None)
    }

    /// [`Database::execute_traced`] with the originating SQL text
    /// attached for slow-query-log entries, which also capture the trace
    /// summary.
    pub fn execute_traced_sourced(
        &self,
        plan: &Query,
        source: Option<&str>,
    ) -> Result<(QueryResult, QueryProfile, Trace), StoreError> {
        let session = TraceSession::begin();
        let out = self.execute_profiled_inner(plan, source);
        let trace = session.finish();
        let (result, profile) = out?;
        self.log_slow(source, plan, &profile, Some(trace.summary()));
        Ok((result, profile, trace))
    }

    /// Arm the slow-query ring log: queries whose wall time reaches
    /// `threshold_ns` (0 captures everything) are kept in a ring of the
    /// last `cap` entries, each with its SQL text (when known via the
    /// `*_sourced` surfaces), operator profile, and trace summary. A
    /// `cap` of 0 disarms. Re-arming clears previous contents.
    pub fn set_slow_log(&self, threshold_ns: u64, cap: usize) {
        self.slow_log.arm(threshold_ns, cap);
    }

    /// The slow-query ring log.
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow_log
    }

    /// JSON dump of the slow-query ring log (see [`SlowLog::to_json`]).
    pub fn slow_log_json(&self) -> String {
        self.slow_log.to_json()
    }

    /// Statement-exit governance bookkeeping, run on success *and*
    /// failure: publishes the memory high-water gauge, counts governance
    /// kills by reason, and lands killed statements in the slow-query
    /// ring (threshold-exempt) so a dump shows *why* they died.
    fn finish_statement(
        &self,
        ctx: &ExecContext,
        source: Option<&str>,
        plan: &Query,
        err: Option<&StoreError>,
        started: Instant,
    ) {
        fsdm_obs::gauge!(fsdm_obs::catalog::EXEC_MEM_HIGHWATER)
            .set(ctx.governor.mem_highwater() as i64);
        let reason = match err.map(|e| e.kind) {
            Some(ErrorKind::Cancelled(r)) => {
                fsdm_obs::counter!(fsdm_obs::catalog::GOVERN_CANCELLED).inc();
                Some(r.label())
            }
            Some(ErrorKind::DeadlineExceeded) => {
                fsdm_obs::counter!(fsdm_obs::catalog::GOVERN_DEADLINE_EXCEEDED).inc();
                Some("deadline")
            }
            Some(ErrorKind::BudgetExceeded) => {
                fsdm_obs::counter!(fsdm_obs::catalog::GOVERN_BUDGET_EXCEEDED).inc();
                Some("budget")
            }
            // worker panics are counted at the catch site in `run_morsels`
            Some(ErrorKind::WorkerPanic { .. } | ErrorKind::Generic) | None => None,
        };
        let Some(reason) = reason else { return };
        if !self.slow_log.armed() {
            return;
        }
        let label;
        let source = match source {
            Some(s) => s,
            None => {
                label = op_label(plan);
                &label
            }
        };
        self.slow_log.record_killed(
            source,
            started.elapsed().as_nanos() as u64,
            self.parallelism(),
            reason,
        );
    }

    fn log_slow(
        &self,
        source: Option<&str>,
        plan: &Query,
        profile: &QueryProfile,
        trace_summary: Option<String>,
    ) {
        if !self.slow_log.armed() {
            return;
        }
        let label;
        let source = match source {
            Some(s) => s,
            None => {
                label = op_label(plan);
                &label
            }
        };
        self.slow_log.record(
            source,
            profile.elapsed_ns(),
            self.parallelism(),
            Some(profile),
            trace_summary,
        );
    }

    /// Recursive entry point of the volcano executor. When `prof` carries
    /// a sink, the operator's output row count and inclusive elapsed time
    /// are measured and pushed into it (children collected via a fresh
    /// sink passed down to [`Database::exec_inner`]); with `None` the
    /// executor runs with zero profiling overhead.
    fn exec(
        &self,
        plan: &Query,
        prof: &mut Option<Vec<OpProfile>>,
        ctx: &ExecContext,
    ) -> Result<(Vec<String>, Vec<Row>), StoreError> {
        let mut op_span = trace::span(fsdm_obs::catalog::SPAN_EXEC_OP);
        op_span.record_args(|| op_label(plan));
        match prof {
            None => {
                let mut stats = ParStats::default();
                self.exec_inner(plan, &mut None, ctx, &mut stats)
            }
            Some(sink) => {
                let mut child_sink = Some(Vec::new());
                let mut stats = ParStats::default();
                let start = Instant::now();
                let (names, rows) = self.exec_inner(plan, &mut child_sink, ctx, &mut stats)?;
                sink.push(OpProfile {
                    op: op_label(plan),
                    rows_out: rows.len(),
                    elapsed_ns: start.elapsed().as_nanos() as u64,
                    workers: stats.workers.max(1),
                    morsels: stats.morsels,
                    mode: self.plan_mode(plan),
                    children: child_sink.unwrap_or_default(),
                });
                Ok((names, rows))
            }
        }
    }

    fn exec_inner(
        &self,
        plan: &Query,
        prof: &mut Option<Vec<OpProfile>>,
        ctx: &ExecContext,
        stats: &mut ParStats,
    ) -> Result<(Vec<String>, Vec<Row>), StoreError> {
        match plan {
            Query::Scan { table, filter } => {
                let t = self
                    .tables
                    .get(table)
                    .ok_or_else(|| StoreError::new(format!("no table {table}")))?;
                let names = t.scan_column_names();
                // constant-false scan (the dead-path pruning rewrite):
                // nothing can qualify, so skip the row loop entirely
                if let Some(Expr::Lit(d)) = filter {
                    if !matches!(d, Datum::Bool(true)) {
                        return Ok((names, Vec::new()));
                    }
                }
                // columnar fast path (§5.2.1): a filter that lowers fully
                // to predicate kernels evaluates per morsel over the typed
                // IMC vectors — masks and selection vectors only; rows are
                // rebuilt for qualifying ids alone (late materialization)
                if self.columnar {
                    if let Some(pred) = filter {
                        if let Some(kernel) = pred.compile_predicate(&t.imc.vectors, t.rows.len()) {
                            let chunks =
                                run_morsels(ctx, t.rows.len(), stats, |range, scratch| {
                                    fsdm_fault::fire(FP_EXEC_MORSEL).map_err(fault_err)?;
                                    let start = Instant::now();
                                    let batch = columnar_batch(range, Some(&kernel));
                                    let mut out = Vec::with_capacity(batch.len());
                                    let mut acc = 0;
                                    for i in batch.sel.iter() {
                                        ctx.governor.check_rows(&mut acc, 1)?;
                                        out.push(scan_row(t, i, &t.rows[i], scratch)?);
                                    }
                                    fsdm_obs::counter!(
                                        fsdm_obs::catalog::EXEC_LATE_MATERIALIZE_ROWS
                                    )
                                    .add(out.len() as u64);
                                    fsdm_obs::histogram!(fsdm_obs::catalog::EXEC_BATCH_NS)
                                        .record(start.elapsed().as_nanos() as u64);
                                    Ok(out)
                                })?;
                            return Ok((names, chunks.into_iter().flatten().collect()));
                        }
                    }
                }
                // heap path: materialize + filter per-morsel; morsel-order
                // concatenation keeps row order identical to a serial scan
                let chunks = run_morsels(ctx, t.rows.len(), stats, |range, scratch| {
                    fsdm_fault::fire(FP_EXEC_MORSEL).map_err(fault_err)?;
                    let mut out = Vec::with_capacity(range.len());
                    let mut acc = 0;
                    for i in range.start..range.end {
                        ctx.governor.check_rows(&mut acc, 1)?;
                        let r = scan_row(t, i, &t.rows[i], scratch)?;
                        if let Some(pred) = filter {
                            if !pred.matches_with(&r, scratch)? {
                                continue;
                            }
                        }
                        out.push(r);
                    }
                    Ok(out)
                })?;
                Ok((names, chunks.into_iter().flatten().collect()))
            }
            Query::ViewScan { view } => {
                let plan = self
                    .views
                    .get(view)
                    .ok_or_else(|| StoreError::new(format!("no view {view}")))?;
                self.exec(plan, prof, ctx)
            }
            Query::Filter { input, pred } => {
                let (names, rows) = self.exec(input, prof, ctx)?;
                // parallel predicate evaluation into per-morsel boolean
                // masks; the move-filter over owned rows stays serial
                let masks = run_morsels(ctx, rows.len(), stats, |range, scratch| {
                    fsdm_fault::fire(FP_EXEC_MORSEL).map_err(fault_err)?;
                    rows[range.start..range.end]
                        .iter()
                        .map(|r| pred.matches_with(r, scratch))
                        .collect::<Result<Vec<bool>, _>>()
                })?;
                let keep: Vec<bool> = masks.into_iter().flatten().collect();
                let out = rows.into_iter().zip(keep).filter_map(|(r, k)| k.then_some(r)).collect();
                Ok((names, out))
            }
            Query::Project { input, exprs } => {
                // full fusion: Scan→Filter→Project stays columnar end to
                // end, gathering only selected rows per output expression;
                // rows exist for the first time in the transposed result
                if let Some(out) = self.try_columnar_project(input, exprs, prof, ctx, stats)? {
                    return Ok(out);
                }
                let (_, rows) = self.exec(input, prof, ctx)?;
                let names = exprs.iter().map(|(n, _)| n.clone()).collect();
                let chunks = run_morsels(ctx, rows.len(), stats, |range, scratch| {
                    let mut out = Vec::with_capacity(range.len());
                    for r in &rows[range.start..range.end] {
                        let mut o = Vec::with_capacity(exprs.len());
                        for (_, e) in exprs {
                            o.push(Cell::D(e.eval_with(r, scratch)?));
                        }
                        out.push(o);
                    }
                    Ok(out)
                })?;
                Ok((names, chunks.into_iter().flatten().collect()))
            }
            Query::JsonTable { input, json_col, def } => {
                let (mut names, rows) = self.exec(input, prof, ctx)?;
                names.extend(def.column_names());
                let width = def.width();
                // one cursor per worker, held across all the documents that
                // worker expands: compiled paths and their §4.2.1 look-back
                // caches persist exactly as the old whole-scan cursor did
                let chunks = run_morsels(ctx, rows.len(), stats, |range, scratch| {
                    fsdm_fault::fire(FP_EXEC_JSONTABLE_ROW).map_err(fault_err)?;
                    let mut out = Vec::new();
                    for r in &rows[range.start..range.end] {
                        let jt_rows = match r.get(*json_col) {
                            Some(Cell::J(j)) => j.json_table_rows_with(scratch.cursor(def)),
                            _ => Vec::new(),
                        };
                        if jt_rows.is_empty() {
                            let mut padded = r.clone();
                            padded.extend(std::iter::repeat_n(Cell::D(Datum::Null), width));
                            out.push(padded);
                        } else {
                            for jt in jt_rows {
                                let mut combined = r.clone();
                                combined.extend(jt.into_iter().map(Cell::D));
                                out.push(combined);
                            }
                        }
                    }
                    // the expanded buffer is this operator's memory bill:
                    // every output row holds the input row plus `width`
                    // JSON_TABLE columns
                    ctx.governor
                        .charge(out.len() as u64 * (width as u64 + 1) * BUDGET_BYTES_PER_CELL)?;
                    Ok(out)
                })?;
                Ok((names, chunks.into_iter().flatten().collect()))
            }
            Query::HashJoin { left, right, left_key, right_key } => {
                let (lnames, lrows) = self.exec(left, prof, ctx)?;
                let (rnames, rrows) = self.exec(right, prof, ctx)?;
                let mut names = lnames;
                names.extend(rnames);
                // build: per-morsel partial tables merged at a barrier in
                // morsel order. Each partial holds ascending, disjoint row
                // ids, so per-key concatenation reproduces the serial
                // insertion order exactly.
                let partials = run_morsels(ctx, lrows.len(), stats, |range, _| {
                    fsdm_fault::fire(FP_EXEC_JOIN_BUILD).map_err(fault_err)?;
                    let mut m: HashMap<Datum, Vec<usize>> = HashMap::new();
                    let mut entries = 0u64;
                    for (off, r) in lrows[range.start..range.end].iter().enumerate() {
                        if let Some(Cell::D(d)) = r.get(*left_key) {
                            if !d.is_null() {
                                m.entry(d.clone()).or_default().push(range.start + off);
                                entries += 1;
                            }
                        }
                    }
                    ctx.governor.charge(entries * BUDGET_BYTES_PER_JOIN_ENTRY)?;
                    Ok(m)
                })?;
                let mut build: HashMap<Datum, Vec<usize>> = HashMap::new();
                for m in partials {
                    for (k, v) in m {
                        build.entry(k).or_default().extend(v);
                    }
                }
                // probe: per-morsel over the right input, morsel-ordered
                let chunks = run_morsels(ctx, rrows.len(), stats, |range, _| {
                    let mut out = Vec::new();
                    for r in &rrows[range.start..range.end] {
                        if let Some(Cell::D(d)) = r.get(*right_key) {
                            if let Some(matches) = build.get(d) {
                                for &li in matches {
                                    let mut combined = lrows[li].clone();
                                    combined.extend(r.iter().cloned());
                                    out.push(combined);
                                }
                            }
                        }
                    }
                    Ok(out)
                })?;
                Ok((names, chunks.into_iter().flatten().collect()))
            }
            Query::GroupBy { input, keys, aggs } => {
                // keyless aggregate pushdown: COUNT/SUM/MIN/MAX/AVG fold
                // over the selection vectors without building input rows
                if keys.is_empty() {
                    if let Some(out) = self.try_columnar_agg(input, aggs, prof, ctx, stats)? {
                        return Ok(out);
                    }
                }
                let (_, rows) = self.exec(input, prof, ctx)?;
                group_by(rows, keys, aggs, ctx, stats)
            }
            Query::Sort { input, keys } => {
                let (names, rows) = self.exec(input, prof, ctx)?;
                let rows = sort_rows(rows, keys, ctx, stats)?;
                Ok((names, rows))
            }
            Query::Window { input, name, fun, order } => {
                let (mut names, rows) = self.exec(input, prof, ctx)?;
                let mut rows = sort_rows(rows, order, ctx, stats)?;
                names.push(name.clone());
                match fun {
                    WindowFun::Lag { expr, offset, default } => {
                        // parallel: evaluate the lagged expression per-morsel
                        let chunks = run_morsels(ctx, rows.len(), stats, |range, scratch| {
                            rows[range.start..range.end]
                                .iter()
                                .map(|r| expr.eval_with(r, scratch))
                                .collect::<Result<Vec<Datum>, _>>()
                        })?;
                        let vals: Vec<Datum> = chunks.into_iter().flatten().collect();
                        // serial tail: stitch lagged values back in order
                        let mut scratch = EvalScratch::new();
                        for i in 0..rows.len() {
                            let cell = if i >= *offset {
                                vals[i - *offset].clone()
                            } else {
                                match default {
                                    Some(d) => d.eval_with(&rows[i], &mut scratch)?,
                                    None => Datum::Null,
                                }
                            };
                            rows[i].push(Cell::D(cell));
                        }
                    }
                }
                Ok((names, rows))
            }
            Query::Limit { input, n } => {
                let (names, mut rows) = self.exec(input, prof, ctx)?;
                rows.truncate(*n);
                Ok((names, rows))
            }
            Query::Sample { input, pct } => {
                let (names, rows) = self.exec(input, prof, ctx)?;
                let keep = |i: usize| -> bool {
                    let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32;
                    ((h % 10_000) as f64) < pct * 100.0
                };
                let out = rows
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| keep(*i))
                    .map(|(_, r)| r)
                    .collect();
                Ok((names, out))
            }
        }
    }

    /// Compile the columnar Scan→Filter front of a fused pipeline: the
    /// input must be a base-table scan whose filter (if any) lowers fully
    /// to predicate kernels. This is the single decision point shared by
    /// the executor's fused operators and the EXPLAIN mode report, so the
    /// two can never disagree.
    fn scan_pipeline<'a>(&'a self, input: &Query) -> Option<(&'a Table, Option<PredKernel>)> {
        if !self.columnar {
            return None;
        }
        let Query::Scan { table, filter } = input else { return None };
        let t = self.tables.get(table)?;
        let kernel = match filter {
            None => None,
            Some(pred) => Some(pred.compile_predicate(&t.imc.vectors, t.rows.len())?),
        };
        Some((t, kernel))
    }

    /// `Project` over a columnar scan pipeline, fully fused: per morsel,
    /// kernels filter the batch and each output expression gathers only
    /// the selected rows; the gathered columns are transposed into result
    /// rows — the first (and only) point rows exist in this pipeline.
    fn try_columnar_project(
        &self,
        input: &Query,
        exprs: &[(String, Expr)],
        prof: &mut Option<Vec<OpProfile>>,
        ctx: &ExecContext,
        stats: &mut ParStats,
    ) -> FusedResult {
        let Some((t, kernel)) = self.scan_pipeline(input) else { return Ok(None) };
        let floor = t.schema.width();
        let mut vals = Vec::with_capacity(exprs.len());
        for (_, e) in exprs {
            match e.compile_value(&t.imc.vectors, t.rows.len(), floor) {
                Some(v) => vals.push(v),
                None => return Ok(None),
            }
        }
        let scan_start = Instant::now();
        let chunks = run_morsels(ctx, t.rows.len(), stats, |range, _| {
            fsdm_fault::fire(FP_EXEC_MORSEL).map_err(fault_err)?;
            let mut acc = 0;
            let start = Instant::now();
            let batch = columnar_batch(range, kernel.as_ref());
            ctx.governor.check_rows(&mut acc, batch.len())?;
            let mut cols = Vec::with_capacity(vals.len());
            for v in &vals {
                cols.push(batch.gather(v)?);
            }
            // transpose the gathered columns into rows, moving each datum
            // exactly once
            let mut rows: Vec<Row> =
                (0..batch.len()).map(|_| Vec::with_capacity(cols.len())).collect();
            for col in cols {
                for (r, d) in rows.iter_mut().zip(col) {
                    r.push(Cell::D(d));
                }
            }
            fsdm_obs::counter!(fsdm_obs::catalog::EXEC_LATE_MATERIALIZE_ROWS)
                .add(rows.len() as u64);
            fsdm_obs::histogram!(fsdm_obs::catalog::EXEC_BATCH_NS)
                .record(start.elapsed().as_nanos() as u64);
            Ok(rows)
        })?;
        let rows: Vec<Row> = chunks.into_iter().flatten().collect();
        // the scan never ran as a plan node; report it as part of this
        // fused pipeline so profiled trees keep their plan shape
        if let Some(sink) = prof {
            sink.push(OpProfile {
                op: op_label(input),
                rows_out: rows.len(),
                elapsed_ns: scan_start.elapsed().as_nanos() as u64,
                workers: stats.workers.max(1),
                morsels: stats.morsels,
                mode: "columnar",
                children: Vec::new(),
            });
        }
        let names = exprs.iter().map(|(n, _)| n.clone()).collect();
        Ok(Some((names, rows)))
    }

    /// Keyless aggregation over a columnar scan pipeline: per morsel,
    /// kernels filter the batch and each aggregate argument gathers only
    /// the selected rows; the gathered columns then replay **serially in
    /// morsel order** into the accumulators, so order-sensitive float
    /// SUM/AVG see exactly the update sequence of a serial row scan.
    fn try_columnar_agg(
        &self,
        input: &Query,
        aggs: &[AggSpec],
        prof: &mut Option<Vec<OpProfile>>,
        ctx: &ExecContext,
        stats: &mut ParStats,
    ) -> FusedResult {
        let Some((t, kernel)) = self.scan_pipeline(input) else { return Ok(None) };
        let floor = t.schema.width();
        let mut arg_kernels: Vec<Option<ValKernel>> = Vec::with_capacity(aggs.len());
        for spec in aggs {
            match &spec.arg {
                None => arg_kernels.push(None), // COUNT(*) needs no values
                Some(e) => match e.compile_value(&t.imc.vectors, t.rows.len(), floor) {
                    Some(v) => arg_kernels.push(Some(v)),
                    None => return Ok(None),
                },
            }
        }
        let scan_start = Instant::now();
        let chunks = run_morsels(ctx, t.rows.len(), stats, |range, _| {
            fsdm_fault::fire(FP_EXEC_MORSEL).map_err(fault_err)?;
            let start = Instant::now();
            let batch = columnar_batch(range, kernel.as_ref());
            let mut cols: Vec<Option<Vec<Datum>>> = Vec::with_capacity(arg_kernels.len());
            for k in &arg_kernels {
                cols.push(match k {
                    Some(v) => Some(batch.gather(v)?),
                    None => None,
                });
            }
            fsdm_obs::histogram!(fsdm_obs::catalog::EXEC_BATCH_NS)
                .record(start.elapsed().as_nanos() as u64);
            Ok((batch.len(), cols))
        })?;
        let mut selected = 0usize;
        let mut accs: Vec<Acc> = aggs.iter().map(|a| Acc::new(a.fun)).collect();
        let mut acc_rows = 0;
        for (n, cols) in chunks {
            ctx.governor.check_rows(&mut acc_rows, n)?;
            selected += n;
            for (acc, col) in accs.iter_mut().zip(cols) {
                match col {
                    Some(vals) => {
                        for v in vals {
                            acc.update(Some(v));
                        }
                    }
                    None => {
                        for _ in 0..n {
                            acc.update(None);
                        }
                    }
                }
            }
        }
        if let Some(sink) = prof {
            sink.push(OpProfile {
                op: op_label(input),
                rows_out: selected,
                elapsed_ns: scan_start.elapsed().as_nanos() as u64,
                workers: stats.workers.max(1),
                morsels: stats.morsels,
                mode: "columnar",
                children: Vec::new(),
            });
        }
        let names: Vec<String> = aggs.iter().map(|a| a.name.clone()).collect();
        let row: Row = accs.into_iter().map(|a| Cell::D(a.finish())).collect();
        fsdm_obs::counter!(fsdm_obs::catalog::EXEC_LATE_MATERIALIZE_ROWS).add(1);
        Ok(Some((names, vec![row])))
    }

    /// The pipeline the executor selects for the root operator of an
    /// (already optimized) plan: `"columnar"` when it lowers to
    /// vectorized kernels over IMC vectors, `"row"` otherwise. Backed by
    /// the same kernel compilation the executor runs, so the report
    /// matches the execution.
    pub fn plan_mode(&self, plan: &Query) -> &'static str {
        if self.columnar_root(plan) {
            "columnar"
        } else {
            "row"
        }
    }

    fn columnar_root(&self, plan: &Query) -> bool {
        match plan {
            // a bare scan only counts as columnar when a kernel filter
            // actually runs over the vectors
            Query::Scan { filter: Some(_), .. } => {
                matches!(self.scan_pipeline(plan), Some((_, Some(_))))
            }
            Query::Project { input, exprs } => self
                .scan_pipeline(input)
                .map(|(t, _)| {
                    exprs.iter().all(|(_, e)| {
                        e.compile_value(&t.imc.vectors, t.rows.len(), t.schema.width()).is_some()
                    })
                })
                .unwrap_or(false),
            Query::GroupBy { input, keys, aggs } if keys.is_empty() => self
                .scan_pipeline(input)
                .map(|(t, _)| {
                    aggs.iter().all(|spec| match &spec.arg {
                        None => true,
                        Some(e) => e
                            .compile_value(&t.imc.vectors, t.rows.len(), t.schema.width())
                            .is_some(),
                    })
                })
                .unwrap_or(false),
            _ => false,
        }
    }

    /// [`Query::render`] of an (already optimized) plan with the
    /// executor's pipeline selection appended to every line:
    /// `… mode=columnar|row`. The scan feeding a fused columnar operator
    /// is part of that pipeline and annotates columnar as well.
    pub fn explain_modes(&self, plan: &Query) -> String {
        let mut modes = Vec::new();
        self.collect_modes(plan, false, &mut modes);
        let mut out = String::new();
        for (line, mode) in plan.render().lines().zip(modes) {
            out.push_str(line);
            out.push_str("  mode=");
            out.push_str(mode);
            out.push('\n');
        }
        out
    }

    /// Pre-order mode walk mirroring [`Query::render`]'s line order.
    fn collect_modes(&self, plan: &Query, fused: bool, out: &mut Vec<&'static str>) {
        let columnar = fused || self.columnar_root(plan);
        out.push(if columnar { "columnar" } else { "row" });
        // a fused Project/GroupBy absorbs its scan child into the
        // columnar pipeline; every other child is its own decision
        let fuse_child = columnar && matches!(plan, Query::Project { .. } | Query::GroupBy { .. });
        match plan {
            Query::Filter { input, .. }
            | Query::Project { input, .. }
            | Query::JsonTable { input, .. }
            | Query::GroupBy { input, .. }
            | Query::Sort { input, .. }
            | Query::Window { input, .. }
            | Query::Limit { input, .. }
            | Query::Sample { input, .. } => self.collect_modes(input, fuse_child, out),
            Query::HashJoin { left, right, .. } => {
                self.collect_modes(left, false, out);
                self.collect_modes(right, false, out);
            }
            Query::Scan { .. } | Query::ViewScan { .. } => {}
        }
    }
}

/// Evaluate the (optional) predicate kernel over one morsel, recording
/// kernel time and the surviving batch size.
fn columnar_batch(range: RowRange, kernel: Option<&PredKernel>) -> Batch {
    let batch = match kernel {
        Some(k) => {
            let start = Instant::now();
            let batch = Batch::all(range).filter(k);
            fsdm_obs::histogram!(fsdm_obs::catalog::IMC_KERNEL_NS)
                .record(start.elapsed().as_nanos() as u64);
            batch
        }
        None => Batch::all(range),
    };
    fsdm_obs::histogram!(fsdm_obs::catalog::EXEC_BATCH_ROWS).record(batch.len() as u64);
    batch
}

/// Materialize one scan row: §5.2.2 transparent rewrite (substitute cached
/// OSON bytes for text cells when the IMC is populated), then virtual
/// columns from IMC vectors when materialized, computed on the fly
/// otherwise.
fn scan_row(t: &Table, i: usize, row: &Row, scratch: &mut EvalScratch) -> Result<Row, StoreError> {
    let mut r = t.imc_row(row, Some(i));
    for (vi, vc) in t.virtual_columns.iter().enumerate() {
        let idx = t.schema.width() + vi;
        let cell = match t.imc.vectors.get(&idx) {
            // borrow the slot first so string cells clone straight out of
            // the dictionary without an intermediate owned Datum
            Some(vector) => Cell::D(vector.slot(i).to_datum()),
            None => Cell::D(vc.expr.eval_with(&r, scratch)?),
        };
        r.push(cell);
    }
    Ok(r)
}

/// Per-morsel partial group table: keys in first-seen order, and for each
/// key the evaluated aggregate-argument rows in input order. Keeping raw
/// argument lists (instead of partial [`Acc`]s) lets the merge replay the
/// exact serial accumulation sequence, so non-associative float SUM/AVG
/// come out bit-identical at every degree.
struct GroupPartial {
    order: Vec<Vec<Datum>>,
    args: HashMap<Vec<Datum>, Vec<Vec<Option<Datum>>>>,
}

fn group_by(
    rows: Vec<Row>,
    keys: &[(String, Expr)],
    aggs: &[AggSpec],
    ctx: &ExecContext,
    stats: &mut ParStats,
) -> Result<(Vec<String>, Vec<Row>), StoreError> {
    let names: Vec<String> =
        keys.iter().map(|(n, _)| n.clone()).chain(aggs.iter().map(|a| a.name.clone())).collect();
    // no input rows + no keys: SQL still returns one row of aggregates
    if rows.is_empty() && keys.is_empty() {
        let accs: Vec<Acc> = aggs.iter().map(|a| Acc::new(a.fun)).collect();
        let row: Row = accs.into_iter().map(|a| Cell::D(a.finish())).collect();
        return Ok((names, vec![row]));
    }
    // phase 1 (parallel): per-morsel key + argument evaluation into
    // partial tables that remember first-seen group order
    let partials = run_morsels(ctx, rows.len(), stats, |range, scratch| {
        fsdm_fault::fire(FP_EXEC_GROUPBY_PARTIAL).map_err(fault_err)?;
        // partial tables hold one evaluated datum per key and aggregate
        // argument for every input row of the morsel
        ctx.governor.charge(
            (keys.len() + aggs.len()) as u64 * BUDGET_BYTES_PER_DATUM * range.len() as u64,
        )?;
        let mut p = GroupPartial { order: Vec::new(), args: HashMap::new() };
        for r in &rows[range.start..range.end] {
            let key: Vec<Datum> =
                keys.iter().map(|(_, e)| e.eval_with(r, scratch)).collect::<Result<_, _>>()?;
            let mut arg_row = Vec::with_capacity(aggs.len());
            for spec in aggs {
                arg_row.push(match &spec.arg {
                    Some(e) => Some(e.eval_with(r, scratch)?),
                    None => None,
                });
            }
            match p.args.get_mut(&key) {
                Some(group_rows) => group_rows.push(arg_row),
                None => {
                    p.order.push(key.clone());
                    p.args.insert(key, vec![arg_row]);
                }
            }
        }
        Ok(p)
    })?;
    // phase 2 (serial merge barrier): concatenating each group's argument
    // rows in morsel order is exactly global input order restricted to
    // that group, so the accumulators see the same update sequence a
    // serial run would; likewise first-seen order across morsels in
    // morsel order equals serial first-seen order
    let mut groups: HashMap<Vec<Datum>, Vec<Acc>> = HashMap::new();
    let mut order: Vec<Vec<Datum>> = Vec::new();
    for p in partials {
        let mut args = p.args;
        for key in p.order {
            let arg_rows = args.remove(&key).unwrap_or_default();
            let accs = match groups.get_mut(&key) {
                Some(a) => a,
                None => {
                    order.push(key.clone());
                    groups
                        .entry(key)
                        .or_insert_with(|| aggs.iter().map(|a| Acc::new(a.fun)).collect())
                }
            };
            for arg_row in arg_rows {
                for (acc, arg) in accs.iter_mut().zip(arg_row) {
                    acc.update(arg);
                }
            }
        }
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group present");
        let mut row: Row = key.into_iter().map(Cell::D).collect();
        row.extend(accs.into_iter().map(|a| Cell::D(a.finish())));
        out.push(row);
    }
    Ok((names, out))
}

/// Convert executor rows (which may still hold binary JSON cells) into the
/// datum-only [`QueryResult`] surface.
fn materialize(columns: Vec<String>, rows: Vec<Row>) -> QueryResult {
    let rows = rows
        .into_iter()
        .map(|r| {
            r.into_iter()
                .map(|c| match c {
                    Cell::D(d) => d,
                    Cell::J(j) => Datum::Str(j.decode_to_text()),
                })
                .collect()
        })
        .collect();
    QueryResult { columns, rows }
}

/// Display label of a plan node for [`QueryProfile`] output.
fn op_label(plan: &Query) -> String {
    match plan {
        Query::Scan { table, filter } => {
            if filter.is_some() {
                format!("Scan({table},filtered)")
            } else {
                format!("Scan({table})")
            }
        }
        Query::ViewScan { view } => format!("ViewScan({view})"),
        Query::Filter { .. } => "Filter".to_string(),
        Query::Project { .. } => "Project".to_string(),
        Query::JsonTable { .. } => "JsonTable".to_string(),
        Query::HashJoin { .. } => "HashJoin".to_string(),
        Query::GroupBy { .. } => "GroupBy".to_string(),
        Query::Sort { .. } => "Sort".to_string(),
        Query::Window { name, .. } => format!("Window({name})"),
        Query::Limit { n, .. } => format!("Limit({n})"),
        Query::Sample { pct, .. } => format!("Sample({pct})"),
    }
}

fn sort_rows(
    rows: Vec<Row>,
    keys: &[SortKey],
    ctx: &ExecContext,
    stats: &mut ParStats,
) -> Result<Vec<Row>, StoreError> {
    if rows.len() <= 1 {
        return Ok(rows);
    }
    // precompute key tuples per-morsel (expressions may be JSON ops —
    // evaluate once, in parallel); the sort itself is the serial tail
    let chunks = run_morsels(ctx, rows.len(), stats, |range, scratch| {
        // the sort's memory bill is the precomputed key-tuple table
        ctx.governor.charge(keys.len() as u64 * BUDGET_BYTES_PER_DATUM * range.len() as u64)?;
        rows[range.start..range.end]
            .iter()
            .map(|r| {
                keys.iter().map(|s| s.expr.eval_with(r, scratch)).collect::<Result<Vec<Datum>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()
    })?;
    let keyed: Vec<Vec<Datum>> = chunks.into_iter().flatten().collect();
    // fired once, serially, before the permutation is applied — a fault
    // here proves the sort tail cleans up owned rows mid-operator
    fsdm_fault::fire(FP_EXEC_SORT_PERMUTE).map_err(fault_err)?;
    // stable permutation sort over indices: ties keep input order
    let mut perm: Vec<usize> = (0..rows.len()).collect();
    perm.sort_by(|&x, &y| {
        for (i, sk) in keys.iter().enumerate() {
            let ord = keyed[x][i].order_key_cmp(&keyed[y][i]);
            let ord = if sk.desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    // apply the permutation by moving each owned row once — no per-row
    // clone (the previous implementation duplicated the whole row set)
    let mut slots: Vec<Option<Row>> = rows.into_iter().map(Some).collect();
    let mut out = Vec::with_capacity(slots.len());
    for src in perm {
        out.push(slots[src].take().expect("each source row moves exactly once"));
    }
    Ok(out)
}

/// Aggregate accumulator.
enum Acc {
    Count(u64),
    CountNonNull(u64),
    Sum { total: f64, any: bool },
    Avg { total: f64, n: u64 },
    Min(Option<Datum>),
    Max(Option<Datum>),
}

impl Acc {
    fn new(fun: AggFun) -> Acc {
        match fun {
            AggFun::CountStar => Acc::Count(0),
            AggFun::Count => Acc::CountNonNull(0),
            AggFun::Sum => Acc::Sum { total: 0.0, any: false },
            AggFun::Avg => Acc::Avg { total: 0.0, n: 0 },
            AggFun::Min => Acc::Min(None),
            AggFun::Max => Acc::Max(None),
        }
    }

    fn update(&mut self, arg: Option<Datum>) {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::CountNonNull(n) => {
                if matches!(&arg, Some(d) if !d.is_null()) {
                    *n += 1;
                }
            }
            Acc::Sum { total, any } => {
                if let Some(v) = arg.as_ref().and_then(|d| d.as_num()) {
                    *total += v.to_f64();
                    *any = true;
                }
            }
            Acc::Avg { total, n } => {
                if let Some(v) = arg.as_ref().and_then(|d| d.as_num()) {
                    *total += v.to_f64();
                    *n += 1;
                }
            }
            Acc::Min(cur) => {
                if let Some(d) = arg {
                    if !d.is_null()
                        && cur.as_ref().map(|c| d.order_key_cmp(c).is_lt()).unwrap_or(true)
                    {
                        *cur = Some(d);
                    }
                }
            }
            Acc::Max(cur) => {
                if let Some(d) = arg {
                    if !d.is_null()
                        && cur.as_ref().map(|c| d.order_key_cmp(c).is_gt()).unwrap_or(true)
                    {
                        *cur = Some(d);
                    }
                }
            }
        }
    }

    fn finish(self) -> Datum {
        match self {
            Acc::Count(n) | Acc::CountNonNull(n) => Datum::from(n as i64),
            Acc::Sum { total, any } => {
                if any {
                    Datum::from(total)
                } else {
                    Datum::Null
                }
            }
            Acc::Avg { total, n } => {
                if n > 0 {
                    Datum::from(total / n as f64)
                } else {
                    Datum::Null
                }
            }
            Acc::Min(d) | Acc::Max(d) => d.unwrap_or(Datum::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::jsonaccess::JsonStorage;
    use crate::schema::{ColType, ColumnSpec, ConstraintMode, TableSchema};
    use crate::table::InsertValue;
    use fsdm_sqljson::json_table::{ColumnDef, JsonTableDef};
    use fsdm_sqljson::{parse_path, SqlType};

    fn sample_db(storage: JsonStorage) -> Database {
        let mut t = Table::new(TableSchema::new(
            "po",
            vec![
                ColumnSpec::new("did", ColType::Number),
                ColumnSpec::json("jdoc", storage, ConstraintMode::IsJson),
            ],
        ));
        for (i, (cc, items)) in [
            ("A", vec![("phone", 100.0, 2), ("case", 15.0, 1)]),
            ("B", vec![("ipad", 350.86, 3)]),
            ("A", vec![("tv", 500.0, 1), ("mount", 40.0, 2), ("cable", 5.0, 3)]),
        ]
        .iter()
        .enumerate()
        {
            let items_json: Vec<String> = items
                .iter()
                .map(|(n, p, q)| format!(r#"{{"name":"{n}","price":{p},"quantity":{q}}}"#))
                .collect();
            let doc = format!(
                r#"{{"costcenter":"{cc}","reference":"R-{i}","items":[{}]}}"#,
                items_json.join(",")
            );
            t.insert(vec![(i as i64).into(), InsertValue::Json(doc)]).unwrap();
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    fn items_def() -> JsonTableDef {
        JsonTableDef {
            row_path: parse_path("$.items[*]").unwrap(),
            columns: vec![
                ColumnDef::value("name", SqlType::Varchar2(16), parse_path("$.name").unwrap()),
                ColumnDef::value("price", SqlType::Number, parse_path("$.price").unwrap()),
                ColumnDef::value("quantity", SqlType::Number, parse_path("$.quantity").unwrap()),
            ],
            nested: vec![],
        }
    }

    #[test]
    fn scan_filter_project() {
        for storage in [JsonStorage::Text, JsonStorage::Bson, JsonStorage::Oson] {
            let db = sample_db(storage);
            let q = Query::scan("po")
                .filter(Expr::cmp(
                    Expr::json_value(1, parse_path("$.costcenter").unwrap(), SqlType::Varchar2(4)),
                    CmpOp::Eq,
                    Expr::Lit(Datum::from("A")),
                ))
                .project(vec![("did", Expr::Col(0))]);
            let r = db.execute(&q).unwrap();
            assert_eq!(r.rows.len(), 2, "{storage:?}");
        }
    }

    #[test]
    fn json_table_lateral_expansion() {
        let db = sample_db(JsonStorage::Oson);
        let q =
            Query::JsonTable { input: Box::new(Query::scan("po")), json_col: 1, def: items_def() };
        let r = db.execute(&q).unwrap();
        assert_eq!(r.rows.len(), 6, "2 + 1 + 3 items");
        assert_eq!(r.columns, vec!["did", "jdoc", "name", "price", "quantity"]);
    }

    #[test]
    fn group_by_aggregates() {
        let db = sample_db(JsonStorage::Oson);
        // revenue per costcenter over the un-nested items
        let q = Query::GroupBy {
            input: Box::new(Query::JsonTable {
                input: Box::new(Query::scan("po")),
                json_col: 1,
                def: items_def(),
            }),
            keys: vec![(
                "cc".to_string(),
                Expr::json_value(1, parse_path("$.costcenter").unwrap(), SqlType::Varchar2(4)),
            )],
            aggs: vec![
                AggSpec::count_star("n"),
                AggSpec::of(
                    "revenue",
                    AggFun::Sum,
                    Expr::Arith(
                        Box::new(Expr::Col(3)),
                        crate::expr::ArithOp::Mul,
                        Box::new(Expr::Col(4)),
                    ),
                ),
                AggSpec::of("maxp", AggFun::Max, Expr::Col(3)),
                AggSpec::of("avgq", AggFun::Avg, Expr::Col(4)),
            ],
        };
        let mut r = db.execute(&q).unwrap();
        r.rows.sort_by(|a, b| a[0].order_key_cmp(&b[0]));
        assert_eq!(r.rows.len(), 2);
        // A: phone 100*2 + case 15*1 + tv 500 + mount 80 + cable 15 = 810
        assert_eq!(r.cell(0, "cc"), Some(&Datum::from("A")));
        assert_eq!(r.cell(0, "revenue"), Some(&Datum::from(810.0)));
        assert_eq!(r.cell(0, "n"), Some(&Datum::from(5i64)));
        assert_eq!(r.cell(0, "maxp"), Some(&Datum::from(500.0)));
        // B: 350.86 * 3
        assert_eq!(r.cell(1, "revenue"), Some(&Datum::from(1052.58)));
    }

    #[test]
    fn sort_and_limit() {
        let db = sample_db(JsonStorage::Text);
        let q =
            Query::JsonTable { input: Box::new(Query::scan("po")), json_col: 1, def: items_def() }
                .sort(vec![SortKey::desc(Expr::Col(3))])
                .limit(2);
        let r = db.execute(&q).unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.cell(0, "name"), Some(&Datum::from("tv")));
        assert_eq!(r.cell(1, "name"), Some(&Datum::from("ipad")));
    }

    #[test]
    fn window_lag() {
        let db = sample_db(JsonStorage::Oson);
        let q = Query::Window {
            input: Box::new(Query::JsonTable {
                input: Box::new(Query::scan("po")),
                json_col: 1,
                def: items_def(),
            }),
            name: "prev_price".to_string(),
            fun: WindowFun::Lag { expr: Expr::Col(3), offset: 1, default: Some(Expr::Col(3)) },
            order: vec![SortKey::asc(Expr::Col(3))],
        };
        let r = db.execute(&q).unwrap();
        // sorted by price asc: 5,15,40,100,350.86,500
        assert_eq!(r.cell(0, "prev_price"), Some(&Datum::from(5.0)), "default = own value");
        assert_eq!(r.cell(1, "prev_price"), Some(&Datum::from(5.0)));
        assert_eq!(r.cell(5, "prev_price"), Some(&Datum::from(350.86)));
    }

    #[test]
    fn hash_join() {
        // relational master/detail join
        let mut master = Table::new(TableSchema::new(
            "m",
            vec![
                ColumnSpec::new("id", ColType::Number),
                ColumnSpec::new("cc", ColType::Varchar2(4)),
            ],
        ));
        master.insert(vec![1i64.into(), "A".into()]).unwrap();
        master.insert(vec![2i64.into(), "B".into()]).unwrap();
        let mut detail = Table::new(TableSchema::new(
            "d",
            vec![
                ColumnSpec::new("mid", ColType::Number),
                ColumnSpec::new("price", ColType::Number),
            ],
        ));
        detail.insert(vec![1i64.into(), InsertValue::Datum(Datum::from(10i64))]).unwrap();
        detail.insert(vec![1i64.into(), InsertValue::Datum(Datum::from(20i64))]).unwrap();
        detail.insert(vec![2i64.into(), InsertValue::Datum(Datum::from(30i64))]).unwrap();
        detail.insert(vec![9i64.into(), InsertValue::Datum(Datum::from(99i64))]).unwrap();
        let mut db = Database::new();
        db.add_table(master);
        db.add_table(detail);
        let q = Query::HashJoin {
            left: Box::new(Query::scan("m")),
            right: Box::new(Query::scan("d")),
            left_key: 0,
            right_key: 0,
        };
        let r = db.execute(&q).unwrap();
        assert_eq!(r.rows.len(), 3, "unmatched detail row drops");
        assert_eq!(r.columns, vec!["id", "cc", "mid", "price"]);
    }

    #[test]
    fn views_expand() {
        let db = {
            let mut db = sample_db(JsonStorage::Oson);
            let plan = Query::JsonTable {
                input: Box::new(Query::scan("po")),
                json_col: 1,
                def: items_def(),
            };
            db.create_view("po_item_dmdv", plan);
            db
        };
        let r = db.execute(&Query::view("po_item_dmdv")).unwrap();
        assert_eq!(r.rows.len(), 6);
        assert!(db.execute(&Query::view("nope")).is_err());
    }

    #[test]
    fn empty_group_by_returns_single_row() {
        let db = sample_db(JsonStorage::Text);
        let q = Query::scan_where(
            "po",
            Expr::cmp(Expr::Col(0), CmpOp::Eq, Expr::Lit(Datum::from(999i64))),
        )
        .group_by(vec![], vec![AggSpec::count_star("n")]);
        let r = db.execute(&q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.cell(0, "n"), Some(&Datum::from(0i64)));
    }

    #[test]
    fn execute_profiled_reports_per_operator_rows_and_time() {
        let db = sample_db(JsonStorage::Oson);
        let q =
            Query::JsonTable { input: Box::new(Query::scan("po")), json_col: 1, def: items_def() }
                .sort(vec![SortKey::desc(Expr::Col(3))])
                .limit(2);
        let (result, profile) = db.execute_profiled(&q).unwrap();
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result, db.execute(&q).unwrap(), "profiling must not change results");
        // operator tree mirrors the plan: Limit -> Sort -> JsonTable -> Scan
        let labels: Vec<&str> = profile.ops().iter().map(|o| o.op.as_str()).collect();
        assert_eq!(labels, vec!["Limit(2)", "Sort", "JsonTable", "Scan(po)"]);
        assert_eq!(profile.find("Limit").unwrap().rows_out, 2);
        assert_eq!(profile.find("Sort").unwrap().rows_out, 6);
        assert_eq!(profile.find("JsonTable").unwrap().rows_out, 6, "2 + 1 + 3 items");
        assert_eq!(profile.find("Scan").unwrap().rows_out, 3);
        // inclusive timing: every parent covers its children
        assert!(profile.elapsed_ns() > 0);
        assert!(
            profile.find("Limit").unwrap().elapsed_ns >= profile.find("Sort").unwrap().elapsed_ns
        );
        assert!(
            profile.find("JsonTable").unwrap().elapsed_ns
                >= profile.find("Scan").unwrap().elapsed_ns
        );
        let rendered = profile.render();
        assert!(rendered.contains("JsonTable  rows=6"), "{rendered}");
    }

    #[test]
    fn profiled_view_scan_nests_view_plan() {
        let mut db = sample_db(JsonStorage::Oson);
        db.create_view(
            "po_item_dmdv",
            Query::JsonTable { input: Box::new(Query::scan("po")), json_col: 1, def: items_def() },
        );
        let (r, p) = db.execute_profiled(&Query::view("po_item_dmdv")).unwrap();
        assert_eq!(r.rows.len(), 6);
        // the optimizer inlines the view, so the profile shows its plan
        assert_eq!(p.root.op, "JsonTable");
        assert_eq!(p.find("JsonTable").unwrap().rows_out, 6);
        assert_eq!(p.find("Scan(po)").unwrap().rows_out, 3);
    }

    #[test]
    fn add_table_returns_replaced_table() {
        let mut db = Database::new();
        let mut t1 = Table::new(TableSchema::new("t", vec![ColumnSpec::new("a", ColType::Number)]));
        t1.insert(vec![1i64.into()]).unwrap();
        assert!(db.add_table(t1).is_none(), "first registration replaces nothing");
        let t2 = Table::new(TableSchema::new("t", vec![ColumnSpec::new("a", ColType::Number)]));
        let replaced = db.add_table(t2).expect("same-name registration returns old table");
        assert_eq!(replaced.rows.len(), 1, "the displaced table is handed back intact");
        assert_eq!(db.table("t").unwrap().rows.len(), 0);
    }

    #[test]
    fn oson_imc_transparent_rewrite() {
        let mut db = sample_db(JsonStorage::Text);
        let q = Query::scan("po").project(vec![(
            "cc",
            Expr::json_value(1, parse_path("$.costcenter").unwrap(), SqlType::Varchar2(4)),
        )]);
        let before = db.execute(&q).unwrap();
        db.table_mut("po").unwrap().populate_oson_imc().unwrap();
        let after = db.execute(&q).unwrap();
        assert_eq!(before, after, "IMC must not change results");
    }
}

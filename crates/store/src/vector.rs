//! Vectorized batch pipelines over the IMC (§5.2/§6.5).
//!
//! The IMC stores typed [`ColumnVector`]s; this module keeps execution
//! columnar *through* the operators instead of de-columnarizing at the
//! scan. A [`Batch`] is one morsel's position state — a row range plus a
//! [`SelVec`] selection vector — and flows through compiled kernels:
//!
//! * [`PredKernel`] evaluates a predicate over the vectors into a
//!   null-aware tri-state [`Mask`] (SQL three-valued logic; filters keep
//!   only [`Tri::True`] rows). Numeric comparisons go through
//!   [`JsonNumber`] total order so they match the row path's `sql_cmp`
//!   bit-for-bit; string comparisons run on dictionary *codes* (the
//!   dictionary is sorted, so equality is a binary-search probe and
//!   ranges are code-threshold tests).
//! * [`ValKernel`] gathers projection/aggregate inputs for selected rows
//!   only — **late materialization**: rows are rebuilt from vectors at
//!   pipeline breakers (final result, aggregate merge), never before.
//!
//! Compilation from [`crate::expr::Expr`] lives in `expr.rs`
//! ([`crate::expr::Expr::compile_predicate`] /
//! [`crate::expr::Expr::compile_value`]); any expression the compiler
//! cannot lower falls back to the scratch-based row path, which remains
//! the semantic reference.

use std::sync::Arc;

use fsdm_json::JsonNumber;
use fsdm_sqljson::Datum;

use crate::expr::{ArithOp, CmpOp};
use crate::imc::ColumnVector;
use crate::parallel::RowRange;
use crate::table::StoreError;

/// SQL three-valued truth for one row of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Definitely false.
    False,
    /// Definitely true.
    True,
    /// NULL / unknown (rejected by WHERE, propagated by NOT).
    Unknown,
}

/// Kleene AND over two row verdicts (false dominates).
fn tri_and(a: Tri, b: Tri) -> Tri {
    match (a, b) {
        (Tri::False, _) | (_, Tri::False) => Tri::False,
        (Tri::True, Tri::True) => Tri::True,
        _ => Tri::Unknown,
    }
}

/// Kleene OR over two row verdicts (true dominates).
fn tri_or(a: Tri, b: Tri) -> Tri {
    match (a, b) {
        (Tri::True, _) | (_, Tri::True) => Tri::True,
        (Tri::False, Tri::False) => Tri::False,
        _ => Tri::Unknown,
    }
}

/// A predicate's verdicts over one morsel range, with collapsed
/// constant forms so AND/OR chains can short-circuit whole batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mask {
    /// Every row in the range is true.
    AllTrue,
    /// Every row in the range is false (or the range is empty).
    AllFalse,
    /// Per-row verdicts, indexed by offset from the range start.
    Mixed(Vec<Tri>),
}

impl Mask {
    /// Build from per-row verdicts, collapsing the constant cases.
    pub fn from_tris(tris: Vec<Tri>) -> Mask {
        if tris.iter().all(|t| *t == Tri::False) {
            return Mask::AllFalse; // also the empty range
        }
        if tris.iter().all(|t| *t == Tri::True) {
            return Mask::AllTrue;
        }
        Mask::Mixed(tris)
    }

    /// The verdict at `offset` from the range start.
    pub fn tri(&self, offset: usize) -> Tri {
        match self {
            Mask::AllTrue => Tri::True,
            Mask::AllFalse => Tri::False,
            Mask::Mixed(v) => v[offset],
        }
    }

    /// Kleene AND of two masks over the same range.
    pub fn and(self, rhs: Mask) -> Mask {
        match (self, rhs) {
            (Mask::AllFalse, _) | (_, Mask::AllFalse) => Mask::AllFalse,
            (Mask::AllTrue, m) | (m, Mask::AllTrue) => m,
            (Mask::Mixed(a), Mask::Mixed(b)) => {
                Mask::from_tris(a.into_iter().zip(b).map(|(x, y)| tri_and(x, y)).collect())
            }
        }
    }

    /// Kleene OR of two masks over the same range.
    pub fn or(self, rhs: Mask) -> Mask {
        match (self, rhs) {
            (Mask::AllTrue, _) | (_, Mask::AllTrue) => Mask::AllTrue,
            (Mask::AllFalse, m) | (m, Mask::AllFalse) => m,
            (Mask::Mixed(a), Mask::Mixed(b)) => {
                Mask::from_tris(a.into_iter().zip(b).map(|(x, y)| tri_or(x, y)).collect())
            }
        }
    }
}

impl std::ops::Not for Mask {
    type Output = Mask;

    /// Kleene NOT (unknown stays unknown).
    fn not(self) -> Mask {
        match self {
            Mask::AllTrue => Mask::AllFalse,
            Mask::AllFalse => Mask::AllTrue,
            Mask::Mixed(v) => Mask::from_tris(
                v.into_iter()
                    .map(|t| match t {
                        Tri::True => Tri::False,
                        Tri::False => Tri::True,
                        Tri::Unknown => Tri::Unknown,
                    })
                    .collect(),
            ),
        }
    }
}

/// A selection vector: which rows of a morsel are still alive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelVec {
    /// Every row in the range (the unfiltered fast path).
    All(RowRange),
    /// Ascending absolute row ids within the range.
    Ids(Vec<usize>),
}

impl SelVec {
    /// Selected rows where the mask is [`Tri::True`] (WHERE semantics:
    /// unknown is rejected).
    pub fn from_mask(range: RowRange, mask: &Mask) -> SelVec {
        match mask {
            Mask::AllTrue => SelVec::All(range),
            Mask::AllFalse => SelVec::Ids(Vec::new()),
            Mask::Mixed(v) => SelVec::Ids(
                (range.start..range.end).filter(|i| v[i - range.start] == Tri::True).collect(),
            ),
        }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match self {
            SelVec::All(r) => r.len(),
            SelVec::Ids(ids) => ids.len(),
        }
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Absolute row ids, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let (range, ids) = match self {
            SelVec::All(r) => (Some(*r), None),
            SelVec::Ids(ids) => (None, Some(ids)),
        };
        range.into_iter().flat_map(|r| r.start..r.end).chain(ids.into_iter().flatten().copied())
    }
}

/// One morsel flowing through a columnar pipeline: the covered row range
/// plus the selection vector. The column data itself rides inside the
/// compiled kernels as shared [`Arc<ColumnVector>`] handles, so a batch
/// is pure position state and stages never copy values to pass it on.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The morsel's row range.
    pub range: RowRange,
    /// Rows still selected.
    pub sel: SelVec,
}

impl Batch {
    /// A fresh batch selecting the whole morsel.
    pub fn all(range: RowRange) -> Batch {
        Batch { range, sel: SelVec::All(range) }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.sel.len()
    }

    /// True when no rows survive.
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }

    /// Apply a predicate kernel, intersecting its mask with the current
    /// selection (AND semantics across pipeline stages).
    pub fn filter(self, kernel: &PredKernel) -> Batch {
        let mask = kernel.eval(self.range);
        let sel = match self.sel {
            SelVec::All(range) => SelVec::from_mask(range, &mask),
            SelVec::Ids(ids) => SelVec::Ids(
                ids.into_iter().filter(|i| mask.tri(i - self.range.start) == Tri::True).collect(),
            ),
        };
        Batch { range: self.range, sel }
    }

    /// Gather a value kernel's output for the selected rows (the late
    /// materialization point).
    pub fn gather(&self, kernel: &ValKernel) -> Result<Vec<Datum>, StoreError> {
        fsdm_fault::fire(fsdm_fault::catalog::FP_VECTOR_BATCH).map_err(crate::govern::fault_err)?;
        kernel.gather(&self.sel)
    }
}

/// A compiled, vector-bound predicate. Each leaf holds the
/// [`Arc<ColumnVector>`] it reads, so evaluation is a tight typed loop
/// with no per-row dispatch beyond the vector's own representation.
#[derive(Debug, Clone)]
pub enum PredKernel {
    /// `numbers <op> literal`, compared in [`JsonNumber`] total order —
    /// exactly the row path's `sql_cmp` on a `Numbers` read-back.
    NumCmp {
        /// The `Numbers` vector.
        col: Arc<ColumnVector>,
        /// Comparison operator.
        op: CmpOp,
        /// The (pre-coerced) numeric literal.
        lit: JsonNumber,
    },
    /// `strings =/<> literal`: the literal was binary-searched in the
    /// sorted dictionary at compile time; rows compare codes only.
    StrEq {
        /// The `Strings` vector.
        col: Arc<ColumnVector>,
        /// The literal's dictionary code, if present at all.
        code: Option<u32>,
        /// True for `<>`.
        negate: bool,
    },
    /// `strings </<=/>/>= literal` as a code-threshold test against the
    /// sorted dictionary: true iff `code < bound` (`below`) or
    /// `code >= bound` (`!below`).
    StrBelow {
        /// The `Strings` vector.
        col: Arc<ColumnVector>,
        /// Partition point of the literal in the sorted dictionary.
        bound: u32,
        /// Which side of the threshold is true.
        below: bool,
    },
    /// Arbitrary single-column string predicate, pre-evaluated once per
    /// dictionary entry (numeric-literal coercions, IN lists, LIKE).
    StrVerdict {
        /// The `Strings` vector.
        col: Arc<ColumnVector>,
        /// Verdict per dictionary code.
        verdicts: Arc<[Tri]>,
    },
    /// `bools <op> literal` (`false < true`, as in `sql_cmp`).
    BoolCmp {
        /// The `Bools` vector.
        col: Arc<ColumnVector>,
        /// Comparison operator.
        op: CmpOp,
        /// The boolean literal.
        lit: bool,
    },
    /// A bare boolean column used as the predicate.
    Truth {
        /// The `Bools` vector.
        col: Arc<ColumnVector>,
    },
    /// `col IS NULL` (never unknown).
    IsNull {
        /// Any vector.
        col: Arc<ColumnVector>,
    },
    /// `numbers IN (…)` against a pre-coerced literal list.
    NumIn {
        /// The `Numbers` vector.
        col: Arc<ColumnVector>,
        /// Numeric views of the coercible list literals.
        list: Arc<[JsonNumber]>,
    },
    /// Kleene negation.
    Not(Box<PredKernel>),
    /// Kleene conjunction; skips the right side when the left batch is
    /// already all-false.
    And(Box<PredKernel>, Box<PredKernel>),
    /// Kleene disjunction; skips the right side when the left batch is
    /// already all-true.
    Or(Box<PredKernel>, Box<PredKernel>),
}

/// Read a comparison verdict out of an optional ordering (SQL: `None`
/// means unknown). Shared with the `expr.rs` compile step, which uses it
/// to pre-evaluate per-dictionary-entry verdicts.
pub(crate) fn cmp_tri(ord: Option<std::cmp::Ordering>, op: CmpOp) -> Tri {
    match ord {
        None => Tri::Unknown,
        Some(ord) => {
            let hit = match op {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => ord.is_ne(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
            };
            if hit {
                Tri::True
            } else {
                Tri::False
            }
        }
    }
}

/// Run a per-row closure over the range, collapsing constant outcomes.
fn scan_leaf(range: RowRange, f: impl Fn(usize) -> Tri) -> Mask {
    Mask::from_tris((range.start..range.end).map(f).collect())
}

impl PredKernel {
    /// Evaluate over one morsel range.
    pub fn eval(&self, range: RowRange) -> Mask {
        match self {
            PredKernel::NumCmp { col, op, lit } => match &**col {
                ColumnVector::Numbers(vals) => scan_leaf(range, |i| match vals[i] {
                    Some(v) => cmp_tri(Some(JsonNumber::from(v).total_cmp(lit)), *op),
                    None => Tri::Unknown,
                }),
                other => unreachable!("NumCmp bound to {other:?}"),
            },
            PredKernel::StrEq { col, code, negate } => match &**col {
                ColumnVector::Strings { codes, .. } => scan_leaf(range, |i| match codes[i] {
                    Some(c) => {
                        let eq = Some(c) == *code;
                        if eq != *negate {
                            Tri::True
                        } else {
                            Tri::False
                        }
                    }
                    None => Tri::Unknown,
                }),
                other => unreachable!("StrEq bound to {other:?}"),
            },
            PredKernel::StrBelow { col, bound, below } => match &**col {
                ColumnVector::Strings { codes, .. } => scan_leaf(range, |i| match codes[i] {
                    Some(c) => {
                        if (c < *bound) == *below {
                            Tri::True
                        } else {
                            Tri::False
                        }
                    }
                    None => Tri::Unknown,
                }),
                other => unreachable!("StrBelow bound to {other:?}"),
            },
            PredKernel::StrVerdict { col, verdicts } => match &**col {
                ColumnVector::Strings { codes, .. } => scan_leaf(range, |i| match codes[i] {
                    Some(c) => verdicts[c as usize],
                    None => Tri::Unknown,
                }),
                other => unreachable!("StrVerdict bound to {other:?}"),
            },
            PredKernel::BoolCmp { col, op, lit } => match &**col {
                ColumnVector::Bools(vals) => scan_leaf(range, |i| match vals[i] {
                    Some(v) => cmp_tri(Some(v.cmp(lit)), *op),
                    None => Tri::Unknown,
                }),
                other => unreachable!("BoolCmp bound to {other:?}"),
            },
            PredKernel::Truth { col } => match &**col {
                ColumnVector::Bools(vals) => scan_leaf(range, |i| match vals[i] {
                    Some(true) => Tri::True,
                    Some(false) => Tri::False,
                    None => Tri::Unknown,
                }),
                other => unreachable!("Truth bound to {other:?}"),
            },
            PredKernel::IsNull { col } => scan_leaf(range, |i| {
                if matches!(col.slot(i), crate::imc::VectorSlot::Null) {
                    Tri::True
                } else {
                    Tri::False
                }
            }),
            PredKernel::NumIn { col, list } => match &**col {
                ColumnVector::Numbers(vals) => scan_leaf(range, |i| match vals[i] {
                    Some(v) => {
                        let n = JsonNumber::from(v);
                        if list.iter().any(|x| n.total_cmp(x).is_eq()) {
                            Tri::True
                        } else {
                            Tri::False
                        }
                    }
                    None => Tri::Unknown,
                }),
                other => unreachable!("NumIn bound to {other:?}"),
            },
            PredKernel::Not(inner) => !inner.eval(range),
            PredKernel::And(a, b) => {
                let left = a.eval(range);
                if left == Mask::AllFalse {
                    return Mask::AllFalse; // skip the right side entirely
                }
                left.and(b.eval(range))
            }
            PredKernel::Or(a, b) => {
                let left = a.eval(range);
                if left == Mask::AllTrue {
                    return Mask::AllTrue; // skip the right side entirely
                }
                left.or(b.eval(range))
            }
        }
    }
}

/// A compiled, vector-bound value expression for projections and
/// aggregate arguments.
#[derive(Debug, Clone)]
pub enum ValKernel {
    /// Read a column vector back (numbers round-trip through
    /// [`Datum::from`], which is the identity the row path applies too).
    Col(Arc<ColumnVector>),
    /// A constant.
    Lit(Datum),
    /// Numeric arithmetic over two kernels, with the row path's exact
    /// NULL-propagation and error semantics.
    Arith {
        /// Left operand.
        l: Box<ValKernel>,
        /// Operator.
        op: ArithOp,
        /// Right operand.
        r: Box<ValKernel>,
    },
}

impl ValKernel {
    /// Materialize this kernel's value for every selected row.
    pub fn gather(&self, sel: &SelVec) -> Result<Vec<Datum>, StoreError> {
        match self {
            ValKernel::Col(v) => Ok(sel.iter().map(|i| v.slot(i).to_datum()).collect()),
            ValKernel::Lit(d) => Ok(vec![d.clone(); sel.len()]),
            ValKernel::Arith { l, op, r } => {
                let (xs, ys) = (l.gather(sel)?, r.gather(sel)?);
                xs.into_iter()
                    .zip(ys)
                    .map(|(x, y)| crate::expr::arith_datums(&x, *op, &y))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(start: usize, end: usize) -> RowRange {
        RowRange { start, end }
    }

    fn nums(vals: &[Option<f64>]) -> Arc<ColumnVector> {
        Arc::new(ColumnVector::Numbers(vals.to_vec()))
    }

    fn strings(vals: &[Option<&str>]) -> Arc<ColumnVector> {
        let datums: Vec<Datum> =
            vals.iter().map(|v| v.map(Datum::from).unwrap_or(Datum::Null)).collect();
        Arc::new(ColumnVector::from_datums(&datums))
    }

    #[test]
    fn num_cmp_is_null_aware() {
        let col = nums(&[Some(1.0), None, Some(3.0), Some(2.0)]);
        let k = PredKernel::NumCmp { col, op: CmpOp::Ge, lit: JsonNumber::Int(2) };
        let m = k.eval(range(0, 4));
        assert_eq!(m.tri(0), Tri::False);
        assert_eq!(m.tri(1), Tri::Unknown, "NULL compares unknown");
        assert_eq!(m.tri(2), Tri::True);
        assert_eq!(m.tri(3), Tri::True);
    }

    #[test]
    fn all_true_and_all_false_collapse() {
        let col = nums(&[Some(1.0), Some(2.0), Some(3.0)]);
        let lo = PredKernel::NumCmp { col: col.clone(), op: CmpOp::Gt, lit: JsonNumber::Int(0) };
        let hi = PredKernel::NumCmp { col: col.clone(), op: CmpOp::Gt, lit: JsonNumber::Int(9) };
        assert_eq!(lo.eval(range(0, 3)), Mask::AllTrue);
        assert_eq!(hi.eval(range(0, 3)), Mask::AllFalse);
        // AND short-circuits: an impossible left side wins immediately
        let and = PredKernel::And(Box::new(hi), Box::new(lo.clone()));
        assert_eq!(and.eval(range(0, 3)), Mask::AllFalse);
        let or = PredKernel::Or(Box::new(lo), Box::new(PredKernel::IsNull { col }));
        assert_eq!(or.eval(range(0, 3)), Mask::AllTrue);
    }

    #[test]
    fn empty_range_collapses_to_all_false() {
        let col = nums(&[Some(1.0)]);
        let k = PredKernel::NumCmp { col, op: CmpOp::Eq, lit: JsonNumber::Int(1) };
        assert_eq!(k.eval(range(1, 1)), Mask::AllFalse);
        let sel = SelVec::from_mask(range(1, 1), &Mask::AllFalse);
        assert!(sel.is_empty());
    }

    #[test]
    fn kleene_not_keeps_unknown() {
        let col = nums(&[Some(5.0), None]);
        let k = PredKernel::Not(Box::new(PredKernel::NumCmp {
            col,
            op: CmpOp::Lt,
            lit: JsonNumber::Int(3),
        }));
        let m = k.eval(range(0, 2));
        assert_eq!(m.tri(0), Tri::True, "NOT(5 < 3)");
        assert_eq!(m.tri(1), Tri::Unknown, "NOT(unknown) stays unknown");
    }

    #[test]
    fn string_eq_probes_codes_and_ranges_use_thresholds() {
        let col = strings(&[Some("pear"), Some("apple"), None, Some("plum"), Some("fig")]);
        let ColumnVector::Strings { dict, .. } = &*col else { panic!() };
        // sorted dict: apple fig pear plum
        let code = dict.binary_search(&"pear".to_string()).ok().map(|c| c as u32);
        let eq = PredKernel::StrEq { col: col.clone(), code, negate: false };
        let m = eq.eval(range(0, 5));
        assert_eq!(
            (m.tri(0), m.tri(1), m.tri(2), m.tri(3), m.tri(4)),
            (Tri::True, Tri::False, Tri::Unknown, Tri::False, Tri::False)
        );
        // strings < "pear": apple, fig
        let bound = dict.partition_point(|d| d.as_str() < "pear") as u32;
        let lt = PredKernel::StrBelow { col: col.clone(), bound, below: true };
        let m = lt.eval(range(0, 5));
        assert_eq!(
            (m.tri(0), m.tri(1), m.tri(2), m.tri(3), m.tri(4)),
            (Tri::False, Tri::True, Tri::Unknown, Tri::False, Tri::True)
        );
        // >= "pear" is the complement over non-null rows
        let ge = PredKernel::StrBelow { col, bound, below: false };
        let m = ge.eval(range(0, 5));
        assert_eq!((m.tri(0), m.tri(2), m.tri(4)), (Tri::True, Tri::Unknown, Tri::False));
    }

    #[test]
    fn selection_intersection_and_gather() {
        let col = nums(&[Some(0.0), Some(1.0), Some(2.0), Some(3.0), Some(4.0)]);
        let ge1 = PredKernel::NumCmp { col: col.clone(), op: CmpOp::Ge, lit: JsonNumber::Int(1) };
        let le3 = PredKernel::NumCmp { col: col.clone(), op: CmpOp::Le, lit: JsonNumber::Int(3) };
        let batch = Batch::all(range(0, 5)).filter(&ge1).filter(&le3);
        assert_eq!(batch.len(), 3);
        let got = batch.gather(&ValKernel::Col(col)).unwrap();
        assert_eq!(got, vec![Datum::from(1i64), Datum::from(2i64), Datum::from(3i64)]);
        // arithmetic matches the row path (integral results stay exact)
        let double = ValKernel::Arith {
            l: Box::new(ValKernel::Col(nums(&[
                Some(0.0),
                Some(1.0),
                Some(2.0),
                Some(3.0),
                Some(4.0),
            ]))),
            op: ArithOp::Mul,
            r: Box::new(ValKernel::Lit(Datum::from(2i64))),
        };
        let doubled = batch.gather(&double).unwrap();
        assert_eq!(doubled, vec![Datum::from(2i64), Datum::from(4i64), Datum::from(6i64)]);
    }

    #[test]
    fn gather_on_empty_selection_is_empty() {
        let col = nums(&[Some(1.0), Some(2.0)]);
        let none = PredKernel::NumCmp { col: col.clone(), op: CmpOp::Gt, lit: JsonNumber::Int(9) };
        let batch = Batch::all(range(0, 2)).filter(&none);
        assert!(batch.is_empty());
        assert_eq!(batch.gather(&ValKernel::Col(col)).unwrap(), Vec::<Datum>::new());
    }

    #[test]
    fn null_arith_propagates_and_div0_errors() {
        let col = nums(&[Some(4.0), None]);
        let k = ValKernel::Arith {
            l: Box::new(ValKernel::Col(col.clone())),
            op: ArithOp::Add,
            r: Box::new(ValKernel::Lit(Datum::from(1i64))),
        };
        let out = k.gather(&SelVec::All(range(0, 2))).unwrap();
        assert_eq!(out, vec![Datum::from(5i64), Datum::Null]);
        let div = ValKernel::Arith {
            l: Box::new(ValKernel::Col(col)),
            op: ArithOp::Div,
            r: Box::new(ValKernel::Lit(Datum::from(0i64))),
        };
        let err = div.gather(&SelVec::Ids(vec![0])).unwrap_err();
        assert!(err.to_string().contains("division by zero"), "{err}");
    }
}

//! `EXPLAIN ANALYZE`-style query profiles.
//!
//! When a plan is executed through [`crate::Database::execute_profiled`],
//! every operator in the volcano tree reports its output cardinality and
//! inclusive wall time. The result is a [`QueryProfile`] mirroring the
//! plan shape, suitable for spotting where rows explode (JSON_TABLE
//! un-nesting) or where time goes (path evaluation vs. join vs. sort).

use std::fmt::Write as _;

use fsdm_analyze::Diagnostic;

/// One operator's measurements. `elapsed_ns` is *inclusive* of children,
/// matching the "actual time" convention of `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Operator label, e.g. `Scan(po)`, `JsonTable`, `GroupBy`.
    pub op: String,
    /// Rows emitted by this operator.
    pub rows_out: usize,
    /// Inclusive wall time in nanoseconds.
    pub elapsed_ns: u64,
    /// Peak worker-thread count across this operator's own parallel
    /// pipelines (1 for serial operators; children report their own).
    pub workers: usize,
    /// Morsels this operator dispatched (0 for purely serial operators
    /// such as `Limit`).
    pub morsels: usize,
    /// Execution pipeline this operator ran on: `"columnar"` when it was
    /// evaluated by vectorized kernels over IMC column vectors,
    /// `"row"` for the scratch-based row path.
    pub mode: &'static str,
    /// Child operators in plan order.
    pub children: Vec<OpProfile>,
}

/// Profile of one executed query: the operator tree rooted at the plan's
/// top operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfile {
    /// The root operator (its `elapsed_ns` is the whole query's time).
    pub root: OpProfile,
    /// Prepare-time semantic findings (`fsdm-analyze` FA path codes and
    /// `fsdm-planck` PK plan codes) for the statement this profile
    /// measures. Empty when the executing surface has no analyzer hook
    /// (plan-level execution) or found nothing.
    pub diagnostics: Vec<Diagnostic>,
}

impl QueryProfile {
    /// Wrap a measured operator tree with no diagnostics attached.
    pub fn new(root: OpProfile) -> QueryProfile {
        QueryProfile { root, diagnostics: Vec::new() }
    }
    /// Total inclusive wall time of the query in nanoseconds.
    pub fn elapsed_ns(&self) -> u64 {
        self.root.elapsed_ns
    }

    /// Depth-first search for the first operator whose label starts with
    /// `prefix` (labels carry arguments, e.g. `Scan(po)`).
    pub fn find(&self, prefix: &str) -> Option<&OpProfile> {
        fn dfs<'a>(op: &'a OpProfile, prefix: &str) -> Option<&'a OpProfile> {
            if op.op.starts_with(prefix) {
                return Some(op);
            }
            op.children.iter().find_map(|c| dfs(c, prefix))
        }
        dfs(&self.root, prefix)
    }

    /// All operators in pre-order (root first).
    pub fn ops(&self) -> Vec<&OpProfile> {
        fn walk<'a>(op: &'a OpProfile, out: &mut Vec<&'a OpProfile>) {
            out.push(op);
            for c in &op.children {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// Sum of `morsels` across every operator — the number of
    /// `exec.morsel` spans a trace of this execution contains.
    pub fn total_morsels(&self) -> usize {
        self.ops().iter().map(|o| o.morsels).sum()
    }

    /// Hand-rolled JSON rendering of the operator tree (plus diagnostics
    /// as rendered strings), for slow-query-log dumps and tooling.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        fn walk(op: &OpProfile, out: &mut String) {
            let _ = write!(
                out,
                "{{\"op\":\"{}\",\"rows_out\":{},\"elapsed_ns\":{},\"workers\":{},\
                 \"morsels\":{},\"mode\":\"{}\",\"children\":[",
                esc(&op.op),
                op.rows_out,
                op.elapsed_ns,
                op.workers,
                op.morsels,
                op.mode
            );
            for (i, c) in op.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                walk(c, out);
            }
            out.push_str("]}");
        }
        let mut out = String::from("{\"root\":");
        walk(&self.root, &mut out);
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", esc(&d.to_string()));
        }
        out.push_str("]}");
        out
    }

    /// Indented plan-tree rendering:
    ///
    /// ```text
    /// Project  rows=2  time=0.41ms
    ///   Filter  rows=2  time=0.38ms
    ///     Scan(po)  rows=3  time=0.29ms
    /// ```
    pub fn render(&self) -> String {
        fn walk(op: &OpProfile, depth: usize, out: &mut String) {
            // the parallel annotation appears only when the operator
            // actually ran on more than one worker, so serial plans render
            // exactly as before
            let par = if op.workers > 1 {
                format!("  workers={}  morsels={}", op.workers, op.morsels)
            } else {
                String::new()
            };
            // like the parallel annotation, the pipeline mode only shows
            // when it departs from the default, so row plans render
            // exactly as before
            let mode = if op.mode == "columnar" { "  mode=columnar" } else { "" };
            let _ = writeln!(
                out,
                "{:indent$}{}  rows={}  time={:.2}ms{par}{mode}",
                "",
                op.op,
                op.rows_out,
                op.elapsed_ns as f64 / 1e6,
                indent = depth * 2
            );
            for c in &op.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(&self.root, 0, &mut out);
        if !self.diagnostics.is_empty() {
            out.push_str("diagnostics:\n");
            for d in &self.diagnostics {
                for line in d.to_string().lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryProfile {
        QueryProfile::new(OpProfile {
            op: "Project".into(),
            rows_out: 2,
            elapsed_ns: 2_000_000,
            workers: 1,
            morsels: 1,
            mode: "row",
            children: vec![OpProfile {
                op: "Scan(po)".into(),
                rows_out: 3,
                elapsed_ns: 1_500_000,
                workers: 1,
                morsels: 1,
                mode: "row",
                children: vec![],
            }],
        })
    }

    #[test]
    fn render_annotates_parallel_operators() {
        let mut p = sample();
        p.root.workers = 4;
        p.root.morsels = 16;
        let text = p.render();
        assert!(text.contains("Project  rows=2  time=2.00ms  workers=4  morsels=16"), "{text}");
        assert!(
            text.contains("\n  Scan(po)  rows=3  time=1.50ms\n"),
            "serial child unchanged: {text}"
        );
    }

    #[test]
    fn render_annotates_columnar_operators() {
        let mut p = sample();
        p.root.mode = "columnar";
        let text = p.render();
        assert!(text.contains("Project  rows=2  time=2.00ms  mode=columnar"), "{text}");
        assert!(text.contains("\n  Scan(po)  rows=3  time=1.50ms\n"), "row child plain: {text}");
        assert!(p.to_json().contains("\"mode\":\"columnar\""), "{}", p.to_json());
    }

    #[test]
    fn find_and_ops() {
        let p = sample();
        assert_eq!(p.find("Scan").unwrap().rows_out, 3);
        assert!(p.find("HashJoin").is_none());
        let ops: Vec<&str> = p.ops().iter().map(|o| o.op.as_str()).collect();
        assert_eq!(ops, vec!["Project", "Scan(po)"]);
        assert_eq!(p.elapsed_ns(), 2_000_000);
    }

    #[test]
    fn render_indents_children() {
        let text = sample().render();
        assert!(text.contains("Project  rows=2"));
        assert!(text.contains("\n  Scan(po)  rows=3"), "{text}");
        assert!(!text.contains("diagnostics:"), "no findings, no section: {text}");
    }

    #[test]
    fn render_appends_diagnostics() {
        use fsdm_analyze::Code;
        use fsdm_sqljson::Span;
        let mut p = sample();
        p.diagnostics.push(Diagnostic::new(
            Code::UnknownPath,
            Span::new(1, 8),
            "$.persno",
            "no ingested document has field `persno`".to_string(),
        ));
        let text = p.render();
        assert!(text.contains("diagnostics:"), "{text}");
        let banner = format!("{} error [{}]", Code::UnknownPath.id(), Code::UnknownPath.slug());
        assert!(text.contains(&banner), "{text}");
    }
}

//! Slow-query ring log: a fixed-size ring of the most recent queries
//! whose wall time crossed a configurable threshold.
//!
//! The log is owned by [`crate::Database`] and disarmed by default — an
//! unarmed log costs one relaxed atomic load per query. When armed (see
//! [`crate::Database::set_slow_log`]), every query executed through the
//! `Database`/`Session` surfaces is timed, and entries over the threshold
//! are pushed into the ring: SQL text (when the surface knows it),
//! the [`QueryProfile`] operator tree, and the trace summary when the
//! query ran under an armed trace session. The ring holds the last `cap`
//! entries; older ones are evicted and counted
//! (`slowlog.evicted`). Dump the ring as JSON with
//! [`crate::Database::slow_log_json`] or `repro --slow-log`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use crate::profile::QueryProfile;

/// One slow query captured by the ring.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Monotonic capture sequence number (survives eviction, so dumps
    /// show how many slow queries came before the ring's window).
    pub seq: u64,
    /// SQL text, or a plan label when the query bypassed the SQL layer.
    pub source: String,
    /// End-to-end wall time in nanoseconds.
    pub elapsed_ns: u64,
    /// Parallel degree the query ran with.
    pub threads: usize,
    /// Operator tree, when the execution was profiled.
    pub profile: Option<QueryProfile>,
    /// Trace summary (`spans=… dropped=… names[…]`), when the query ran
    /// under an armed trace session.
    pub trace_summary: Option<String>,
    /// Governance kill reason (`"user"`, `"deadline"`, `"budget"`) when
    /// the query was cancelled rather than finishing; `None` for queries
    /// that ran to completion.
    pub cancel_reason: Option<&'static str>,
}

#[derive(Debug, Default)]
struct Ring {
    cap: usize,
    next_seq: u64,
    entries: Vec<SlowEntry>,
}

/// The ring log itself. Uses a `Mutex` for the ring (armed-path only);
/// the armed/threshold check on the query hot path is a single relaxed
/// atomic load.
#[derive(Debug, Default)]
pub struct SlowLog {
    /// Threshold in nanoseconds; 0 means disarmed.
    threshold_ns: AtomicU64,
    ring: Mutex<Ring>,
}

impl SlowLog {
    /// Disarmed log.
    pub fn new() -> SlowLog {
        SlowLog::default()
    }

    /// Arm with a threshold (`0` captures every query) and ring capacity,
    /// clearing any previous contents. A capacity of 0 disarms.
    pub fn arm(&self, threshold_ns: u64, cap: usize) {
        let mut ring = lock(&self.ring);
        ring.cap = cap;
        ring.entries.clear();
        ring.next_seq = 0;
        // threshold 0 must still arm, so the flag value is threshold+1
        let flag = if cap == 0 { 0 } else { threshold_ns.saturating_add(1) };
        self.threshold_ns.store(flag, Relaxed);
        fsdm_obs::gauge!(fsdm_obs::catalog::SLOWLOG_ENTRIES).set(0);
    }

    /// Disarm and clear.
    pub fn disarm(&self) {
        self.arm(0, 0);
    }

    /// Whether queries should be measured against the log at all — the
    /// one check on the un-armed hot path.
    #[inline]
    pub fn armed(&self) -> bool {
        self.threshold_ns.load(Relaxed) != 0
    }

    /// The armed threshold in nanoseconds, if armed.
    pub fn threshold_ns(&self) -> Option<u64> {
        match self.threshold_ns.load(Relaxed) {
            0 => None,
            t => Some(t - 1),
        }
    }

    /// Record a finished query; a no-op unless armed and `elapsed_ns`
    /// reaches the threshold.
    pub fn record(
        &self,
        source: &str,
        elapsed_ns: u64,
        threads: usize,
        profile: Option<&QueryProfile>,
        trace_summary: Option<String>,
    ) {
        let Some(threshold) = self.threshold_ns() else { return };
        if elapsed_ns < threshold {
            return;
        }
        self.push(source, elapsed_ns, threads, profile, trace_summary, None);
    }

    /// Record a governance-killed query with its cancel reason. Killed
    /// queries bypass the threshold: a statement that died to a deadline
    /// or budget is interesting regardless of how long it ran.
    pub fn record_killed(
        &self,
        source: &str,
        elapsed_ns: u64,
        threads: usize,
        reason: &'static str,
    ) {
        if !self.armed() {
            return;
        }
        self.push(source, elapsed_ns, threads, None, None, Some(reason));
    }

    fn push(
        &self,
        source: &str,
        elapsed_ns: u64,
        threads: usize,
        profile: Option<&QueryProfile>,
        trace_summary: Option<String>,
        cancel_reason: Option<&'static str>,
    ) {
        let mut ring = lock(&self.ring);
        if ring.cap == 0 {
            return;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.entries.len() == ring.cap {
            ring.entries.remove(0);
            fsdm_obs::counter!(fsdm_obs::catalog::SLOWLOG_EVICTED).inc();
        }
        ring.entries.push(SlowEntry {
            seq,
            source: source.to_string(),
            elapsed_ns,
            threads,
            profile: profile.cloned(),
            trace_summary,
            cancel_reason,
        });
        fsdm_obs::gauge!(fsdm_obs::catalog::SLOWLOG_ENTRIES).set(ring.entries.len() as i64);
    }

    /// Snapshot of the ring's current entries, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        lock(&self.ring).entries.clone()
    }

    /// Dump the ring as a JSON document:
    /// `{"threshold_ns":…,"captured":…,"entries":[…]}` where `captured`
    /// counts every recorded entry including evicted ones.
    pub fn to_json(&self) -> String {
        let threshold = self.threshold_ns();
        let ring = lock(&self.ring);
        let mut out = String::from("{\"threshold_ns\":");
        match threshold {
            Some(t) => {
                let _ = write!(out, "{t}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"captured\":{},\"entries\":[", ring.next_seq);
        for (i, e) in ring.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"source\":\"{}\",\"elapsed_ns\":{},\"threads\":{}",
                e.seq,
                esc(&e.source),
                e.elapsed_ns,
                e.threads
            );
            match &e.profile {
                Some(p) => {
                    let _ = write!(out, ",\"profile\":{}", p.to_json());
                }
                None => out.push_str(",\"profile\":null"),
            }
            match &e.trace_summary {
                Some(t) => {
                    let _ = write!(out, ",\"trace\":\"{}\"", esc(t));
                }
                None => out.push_str(",\"trace\":null"),
            }
            match e.cancel_reason {
                Some(r) => {
                    let _ = write!(out, ",\"cancel_reason\":\"{r}\"");
                }
                None => out.push_str(",\"cancel_reason\":null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Acquire the ring, recovering from poisoning: a query that panicked
/// mid-record leaves at worst a consistent-but-stale ring (every write
/// below touches one entry at a time), and losing the slow log would be
/// a poor trade for one panicked query. Recoveries are counted so an
/// unstable workload is visible in the metrics.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        fsdm_obs::counter!(fsdm_obs::catalog::SLOWLOG_POISONED).inc();
        poisoned.into_inner()
    })
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_log_records_nothing() {
        let log = SlowLog::new();
        assert!(!log.armed());
        log.record("SELECT 1", 1_000_000, 1, None, None);
        assert!(log.entries().is_empty());
    }

    #[test]
    fn threshold_filters_and_ring_evicts() {
        let log = SlowLog::new();
        log.arm(1000, 2);
        assert_eq!(log.threshold_ns(), Some(1000));
        log.record("fast", 999, 1, None, None);
        log.record("slow1", 1000, 1, None, None);
        log.record("slow2", 5000, 2, None, Some("spans=3 dropped=0 names[a=3]".into()));
        log.record("slow3", 9000, 4, None, None);
        let entries = log.entries();
        assert_eq!(entries.len(), 2, "ring holds the last two");
        assert_eq!(entries[0].source, "slow2");
        assert_eq!(entries[1].source, "slow3");
        assert_eq!(entries[1].seq, 2, "seq counts all captured entries");
        let json = log.to_json();
        assert!(json.contains("\"captured\":3"), "{json}");
        assert!(json.contains("\"source\":\"slow3\""), "{json}");
        assert!(json.contains("\"trace\":null"), "{json}");
    }

    #[test]
    fn poisoned_ring_is_recovered_and_counted() {
        let log = SlowLog::new();
        log.arm(0, 4);
        log.record("before", 1, 1, None, None);
        let poisoned = fsdm_obs::global().counter(fsdm_obs::catalog::SLOWLOG_POISONED);
        let before = poisoned.get();
        // poison the ring the only way it can happen: a panic unwinding
        // while the guard is held
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = log.ring.lock().unwrap();
            panic!("unwind with the ring held");
        }));
        assert!(log.ring.is_poisoned());
        log.record("after", 1, 1, None, None);
        let entries = log.entries();
        assert_eq!(entries.len(), 2, "the ring keeps working after poisoning");
        assert_eq!(entries[1].source, "after");
        assert!(poisoned.get() > before, "recoveries must be counted");
    }

    #[test]
    fn killed_queries_bypass_the_threshold_and_carry_their_reason() {
        let log = SlowLog::new();
        log.arm(1_000_000, 4);
        log.record_killed("SELECT sleep", 5, 4, "deadline");
        let entries = log.entries();
        assert_eq!(entries.len(), 1, "killed entries skip the threshold filter");
        assert_eq!(entries[0].cancel_reason, Some("deadline"));
        let json = log.to_json();
        assert!(json.contains("\"cancel_reason\":\"deadline\""), "{json}");
        log.record("slow", 2_000_000, 1, None, None);
        assert_eq!(log.entries()[1].cancel_reason, None);
        assert!(log.to_json().contains("\"cancel_reason\":null"));
        log.disarm();
        log.record_killed("after disarm", 5, 1, "user");
        assert!(log.entries().is_empty(), "disarmed log ignores kills too");
    }

    #[test]
    fn threshold_zero_captures_everything_when_armed() {
        let log = SlowLog::new();
        log.arm(0, 4);
        assert!(log.armed());
        assert_eq!(log.threshold_ns(), Some(0));
        log.record("q", 1, 1, None, None);
        assert_eq!(log.entries().len(), 1);
        log.disarm();
        assert!(!log.armed());
        assert!(log.entries().is_empty());
    }
}

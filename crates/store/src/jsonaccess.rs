//! Physical JSON storage formats and format-dispatched SQL/JSON
//! evaluation.
//!
//! This module is where the §6.3 comparison lives: the *same* SQL/JSON
//! operator runs against a `Text` cell (streaming engine or parse-to-DOM),
//! a `Bson` cell (skip navigation), or an `Oson` cell (jump navigation) —
//! the query layer is storage-agnostic, exactly like the views in the
//! paper that "hide the underlying physical data storage model
//! differences".

use fsdm_json::{JsonValue, ValueDom};
use fsdm_sqljson::json_table::{JsonTableCursor, JsonTableDef};
use fsdm_sqljson::ops::{json_value, OnError};
use fsdm_sqljson::{Datum, PathEvaluator, SqlType};

use crate::table::StoreError;

/// Physical storage of a JSON column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonStorage {
    /// Compact JSON text (the paper's varchar2 storage).
    Text,
    /// BSON bytes (raw storage).
    Bson,
    /// OSON bytes (raw storage).
    Oson,
}

/// One stored JSON document. Binary payloads are reference-counted so
/// the in-memory store can hand OSON bytes to query rows without copying.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonCell {
    /// JSON text (shared: scans hand the same buffer to many rows).
    Text(std::sync::Arc<str>),
    /// BSON-encoded bytes.
    Bson(std::sync::Arc<Vec<u8>>),
    /// OSON-encoded bytes.
    Oson(std::sync::Arc<Vec<u8>>),
}

impl JsonCell {
    /// Encode a document for the given storage.
    pub fn encode(doc: &JsonValue, storage: JsonStorage) -> Result<JsonCell, StoreError> {
        Ok(match storage {
            JsonStorage::Text => JsonCell::Text(fsdm_json::to_string(doc).into()),
            JsonStorage::Bson => JsonCell::Bson(std::sync::Arc::new(
                fsdm_bson::encode(doc).map_err(|e| StoreError::new(e.to_string()))?,
            )),
            JsonStorage::Oson => JsonCell::Oson(std::sync::Arc::new(
                fsdm_oson::encode(doc).map_err(|e| StoreError::new(e.to_string()))?,
            )),
        })
    }

    /// Store already-serialized JSON text without re-encoding (used by the
    /// no-constraint insert mode, which must not even parse).
    pub fn raw_text(text: impl Into<String>) -> JsonCell {
        JsonCell::Text(text.into().into())
    }

    /// Size in bytes as stored.
    pub fn stored_size(&self) -> usize {
        match self {
            JsonCell::Text(s) => s.len(),
            JsonCell::Bson(b) | JsonCell::Oson(b) => b.len(),
        }
    }

    /// Fully decode to the value model (used by DataGuide maintenance and
    /// re-encoding, not by queries).
    pub fn decode(&self) -> Result<JsonValue, StoreError> {
        match self {
            JsonCell::Text(s) => fsdm_json::parse(s).map_err(|e| StoreError::new(e.to_string())),
            JsonCell::Bson(b) => fsdm_bson::decode(b).map_err(|e| StoreError::new(e.to_string())),
            JsonCell::Oson(b) => fsdm_oson::decode(b).map_err(|e| StoreError::new(e.to_string())),
        }
    }

    /// Render as JSON text (selecting a raw JSON column in a query).
    pub fn decode_to_text(&self) -> String {
        match self {
            JsonCell::Text(s) => s.to_string(),
            other => match other.decode() {
                Ok(v) => fsdm_json::to_string(&v),
                Err(_) => String::new(),
            },
        }
    }

    /// `JSON_VALUE` against this cell, paying each format's native access
    /// cost (text: parse / stream; BSON: sequential scan; OSON: jump).
    pub fn json_value(&self, ev: &mut PathEvaluator, ty: SqlType) -> Datum {
        match self {
            JsonCell::Text(s) => {
                // §5.1: streaming for simple paths, DOM otherwise — both
                // pay the text parse
                match fsdm_sqljson::streaming::eval_text(s, ev.path()) {
                    Ok(values) => single_scalar(values, ty),
                    Err(_) => Datum::Null,
                }
            }
            JsonCell::Bson(b) => match fsdm_bson::BsonDoc::new(b) {
                Ok(doc) => json_value(&doc, ev, ty, OnError::Null).unwrap_or(Datum::Null),
                Err(_) => Datum::Null,
            },
            JsonCell::Oson(b) => match fsdm_oson::OsonDoc::new(b) {
                Ok(doc) => json_value(&doc, ev, ty, OnError::Null).unwrap_or(Datum::Null),
                Err(_) => Datum::Null,
            },
        }
    }

    /// `JSON_EXISTS` against this cell.
    pub fn json_exists(&self, ev: &mut PathEvaluator) -> bool {
        match self {
            JsonCell::Text(s) => {
                fsdm_sqljson::streaming::exists_text(s, ev.path()).unwrap_or(false)
            }
            JsonCell::Bson(b) => fsdm_bson::BsonDoc::new(b).map(|d| ev.exists(&d)).unwrap_or(false),
            JsonCell::Oson(b) => fsdm_oson::OsonDoc::new(b).map(|d| ev.exists(&d)).unwrap_or(false),
        }
    }

    /// Run a JSON_TABLE definition against this cell (one-shot; hot loops
    /// should use [`JsonCell::json_table_rows_with`] and share a cursor).
    pub fn json_table_rows(&self, def: &JsonTableDef) -> Vec<Vec<Datum>> {
        let mut cursor = JsonTableCursor::new(def);
        self.json_table_rows_with(&mut cursor)
    }

    /// Run JSON_TABLE with a caller-owned cursor, so compiled paths and
    /// their field-id look-back caches persist across documents.
    pub fn json_table_rows_with(&self, cursor: &mut JsonTableCursor) -> Vec<Vec<Datum>> {
        match self {
            JsonCell::Text(s) => match fsdm_json::parse(s) {
                Ok(v) => {
                    let dom = ValueDom::new(&v);
                    cursor.rows(&dom)
                }
                Err(_) => Vec::new(),
            },
            JsonCell::Bson(b) => match fsdm_bson::BsonDoc::new(b) {
                Ok(doc) => cursor.rows(&doc),
                Err(_) => Vec::new(),
            },
            JsonCell::Oson(b) => match fsdm_oson::OsonDoc::new(b) {
                Ok(doc) => cursor.rows(&doc),
                Err(_) => Vec::new(),
            },
        }
    }
}

/// JSON_VALUE cardinality + coercion over materialized path results.
fn single_scalar(values: Vec<JsonValue>, ty: SqlType) -> Datum {
    if values.len() != 1 {
        return Datum::Null;
    }
    match Datum::from_json_scalar(&values[0]) {
        Some(d) => d.coerce(ty).unwrap_or(Datum::Null),
        None => Datum::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_json::parse;
    use fsdm_sqljson::parse_path;

    const DOC: &str = r#"{"po":{"id":4,"items":[{"p":10},{"p":20}]}}"#;

    fn cells() -> Vec<JsonCell> {
        let v = parse(DOC).unwrap();
        vec![
            JsonCell::encode(&v, JsonStorage::Text).unwrap(),
            JsonCell::encode(&v, JsonStorage::Bson).unwrap(),
            JsonCell::encode(&v, JsonStorage::Oson).unwrap(),
        ]
    }

    #[test]
    fn json_value_agrees_across_storages() {
        for cell in cells() {
            let mut ev = PathEvaluator::new(parse_path("$.po.id").unwrap());
            assert_eq!(cell.json_value(&mut ev, SqlType::Number), Datum::from(4i64));
        }
    }

    #[test]
    fn json_exists_agrees_across_storages() {
        for cell in cells() {
            let mut yes = PathEvaluator::new(parse_path("$.po.items[*]?(@.p > 15)").unwrap());
            let mut no = PathEvaluator::new(parse_path("$.po.items[*]?(@.p > 99)").unwrap());
            assert!(cell.json_exists(&mut yes));
            assert!(!cell.json_exists(&mut no));
        }
    }

    #[test]
    fn decode_roundtrips() {
        let v = parse(DOC).unwrap();
        for cell in cells() {
            assert!(cell.decode().unwrap().eq_unordered(&v));
        }
    }

    #[test]
    fn stored_sizes_differ_by_format() {
        let sizes: Vec<usize> = cells().iter().map(|c| c.stored_size()).collect();
        assert!(sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn multi_match_json_value_is_null() {
        for cell in cells() {
            let mut ev = PathEvaluator::new(parse_path("$.po.items[*].p").unwrap());
            assert!(cell.json_value(&mut ev, SqlType::Number).is_null());
        }
    }
}

//! Query governance: cooperative cancellation, statement deadlines, and
//! memory budgets, threaded through the executor as a [`QueryGovernor`].
//!
//! The governor is built fresh per statement by `Database::exec_context`
//! and shared (via `Arc`) by every morsel worker. Workers call
//! [`QueryGovernor::checkpoint`] at each morsel boundary and
//! [`QueryGovernor::check_rows`] every [`ROWS_PER_CHECK`] rows inside
//! fused columnar loops; memory-hungry operators call
//! [`QueryGovernor::charge`] as they materialize state. All three degrade
//! into a *typed* [`StoreError`] — a governance kill is an ordinary error
//! the caller can match on, never an abort.
//!
//! The cancel token is a single atomic word holding the packed
//! [`CancelReason`] (0 = live). It is a publish/consume handshake
//! (declared `Handshake` in the obs `ATOMICS` registry): the first
//! `cancel` wins via compare-exchange, and workers observe it with
//! `Acquire` loads. Deadlines deliberately do *not* write the token —
//! each checkpoint compares its own clock against the shared deadline, so
//! an expired statement can never leave a stale cancellation behind for
//! the session's next statement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crate::table::{CancelReason, ErrorKind, StoreError};

/// Rows a fused columnar loop may process between cancellation checks.
pub const ROWS_PER_CHECK: usize = 4096;

/// The process-wide default statement timeout: `FSDM_TIMEOUT_MS` when
/// set to a positive integer, otherwise none. Mirrors `FSDM_THREADS` —
/// resolved once, on first database construction, so binaries that take
/// a `--timeout-ms` flag must set the variable before building any
/// [`crate::Database`].
pub fn default_timeout_ms() -> Option<u64> {
    static TIMEOUT: OnceLock<Option<u64>> = OnceLock::new();
    *TIMEOUT.get_or_init(|| {
        std::env::var("FSDM_TIMEOUT_MS").ok().and_then(|s| s.parse::<u64>().ok()).filter(|&n| n > 0)
    })
}

const LIVE: u64 = 0;

fn encode(reason: CancelReason) -> u64 {
    match reason {
        CancelReason::User => 1,
        CancelReason::Deadline => 2,
        CancelReason::Budget => 3,
        CancelReason::PeerPanic => 4,
    }
}

fn decode(word: u64) -> Option<CancelReason> {
    match word {
        1 => Some(CancelReason::User),
        2 => Some(CancelReason::Deadline),
        3 => Some(CancelReason::Budget),
        4 => Some(CancelReason::PeerPanic),
        _ => None,
    }
}

/// A shared, reusable cancellation flag. One token lives in the
/// `Database` for its whole lifetime; each statement resets it on entry
/// (sessions are `&mut` per statement, so no concurrent statement can
/// observe the reset).
#[derive(Debug, Default)]
pub struct CancelToken {
    /// Packed [`CancelReason`] (0 = live). Handshake discipline: a
    /// nonzero value published here gates how workers wind down.
    cancel_reason: AtomicU64,
}

impl CancelToken {
    /// A live (uncancelled) token.
    pub fn new() -> CancelToken {
        CancelToken { cancel_reason: AtomicU64::new(LIVE) }
    }

    /// The published cancel reason, if any.
    #[inline]
    pub fn check(&self) -> Option<CancelReason> {
        decode(self.cancel_reason.load(Ordering::Acquire))
    }

    /// Publish `reason`; the first cancel wins. Returns whether this call
    /// was the one that cancelled the token.
    pub fn cancel(&self, reason: CancelReason) -> bool {
        let raced = self.cancel_reason.compare_exchange(
            LIVE,
            encode(reason),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        raced.is_ok()
    }

    /// Make the token live again (statement entry through `&mut Session`).
    pub fn reset(&self) {
        self.cancel_reason.store(LIVE, Ordering::Release);
    }

    /// Clear a leftover peer-panic cancellation only, preserving a
    /// pending user cancel. Used by `Database::exec_context` (`&self`
    /// path) where a full reset could swallow a concurrent user cancel.
    pub fn clear_transient(&self) {
        let peer = encode(CancelReason::PeerPanic);
        let _ =
            self.cancel_reason.compare_exchange(peer, LIVE, Ordering::AcqRel, Ordering::Acquire);
    }
}

/// Cross-thread cancellation handle for the session's current (and
/// future) statements; clone of the database's token.
#[derive(Debug, Clone)]
pub struct CancelHandle {
    token: Arc<CancelToken>,
}

impl CancelHandle {
    /// Wrap a shared token.
    pub fn new(token: Arc<CancelToken>) -> CancelHandle {
        CancelHandle { token }
    }

    /// Request cancellation of the running statement. Returns whether
    /// this call was the first to cancel.
    pub fn cancel(&self) -> bool {
        self.token.cancel(CancelReason::User)
    }

    /// Whether a cancellation is currently published.
    pub fn is_cancelled(&self) -> bool {
        self.token.check().is_some()
    }
}

/// Per-statement memory accounting. `used` only grows during a statement
/// (operators charge, nothing refunds), so the final value doubles as the
/// statement's high-water mark.
#[derive(Debug, Default)]
struct MemBudget {
    limit: Option<u64>,
    used: AtomicU64,
}

/// The per-statement governance bundle shared by every worker: cancel
/// token, optional deadline, and optional memory budget.
#[derive(Debug)]
pub struct QueryGovernor {
    cancel: Arc<CancelToken>,
    deadline: Option<Instant>,
    timeout_ms: Option<u64>,
    budget: MemBudget,
}

impl QueryGovernor {
    /// A governor with no limits and a fresh private token — the default
    /// for contexts built outside a session (tests, benches).
    pub fn unlimited() -> QueryGovernor {
        QueryGovernor {
            cancel: Arc::new(CancelToken::new()),
            deadline: None,
            timeout_ms: None,
            budget: MemBudget::default(),
        }
    }

    /// A governor for one statement: shared token, deadline computed from
    /// `timeout_ms` at statement start, memory limit in bytes.
    pub fn for_statement(
        cancel: Arc<CancelToken>,
        timeout_ms: Option<u64>,
        mem_limit: Option<u64>,
    ) -> QueryGovernor {
        QueryGovernor {
            cancel,
            deadline: timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
            timeout_ms,
            budget: MemBudget { limit: mem_limit, used: AtomicU64::new(0) },
        }
    }

    /// The shared cancel token.
    pub fn cancel_token(&self) -> &Arc<CancelToken> {
        &self.cancel
    }

    /// Cooperative kill check: called at every morsel boundary. Maps a
    /// published cancellation or an expired deadline to its typed error.
    /// Messages carry no racy values, so which worker loses first cannot
    /// change the reported error.
    #[inline]
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        if let Some(reason) = self.cancel.check() {
            return Err(self.cancel_error(reason));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.deadline_error());
            }
        }
        Ok(())
    }

    /// Row-granular kill check for fused loops that process many rows per
    /// morsel: accumulates into `acc` and runs a [`checkpoint`] every
    /// [`ROWS_PER_CHECK`] rows.
    ///
    /// [`checkpoint`]: QueryGovernor::checkpoint
    #[inline]
    pub fn check_rows(&self, acc: &mut usize, rows: usize) -> Result<(), StoreError> {
        *acc += rows;
        if *acc < ROWS_PER_CHECK {
            return Ok(());
        }
        *acc = 0;
        self.checkpoint()
    }

    /// Charge `bytes` against the statement memory budget. Over-budget
    /// degrades into a typed [`ErrorKind::BudgetExceeded`] error; the
    /// charge itself is never rolled back (the high-water mark records
    /// what the statement tried to use).
    pub fn charge(&self, bytes: u64) -> Result<(), StoreError> {
        let total = self.budget.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        match self.budget.limit {
            Some(limit) if total > limit => Err(StoreError::with_kind(
                format!("memory budget exceeded (limit {limit} bytes)"),
                ErrorKind::BudgetExceeded,
            )),
            _ => Ok(()),
        }
    }

    /// Bytes charged so far — the statement's memory high-water mark.
    pub fn mem_highwater(&self) -> u64 {
        self.budget.used.load(Ordering::Relaxed)
    }

    /// The configured statement timeout, if any.
    pub fn timeout_ms(&self) -> Option<u64> {
        self.timeout_ms
    }

    fn deadline_error(&self) -> StoreError {
        StoreError::with_kind(
            format!(
                "statement deadline exceeded (timeout {} ms)",
                self.timeout_ms.unwrap_or_default()
            ),
            ErrorKind::DeadlineExceeded,
        )
    }

    fn cancel_error(&self, reason: CancelReason) -> StoreError {
        match reason {
            CancelReason::Deadline => self.deadline_error(),
            CancelReason::Budget => StoreError::with_kind(
                "memory budget exceeded".to_string(),
                ErrorKind::BudgetExceeded,
            ),
            _ => StoreError::with_kind(
                format!("statement cancelled ({})", reason.label()),
                ErrorKind::Cancelled(reason),
            ),
        }
    }
}

/// Convert an injected fault into an ordinary store error, counting the
/// injection. Call sites fire failpoints as
/// `fsdm_fault::fire(FP_X).map_err(fault_err)?`.
pub fn fault_err(e: fsdm_fault::FaultError) -> StoreError {
    fsdm_obs::counter!(fsdm_obs::catalog::FAULT_INJECTED).inc();
    StoreError::new(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_first_cancel_wins_and_reset_revives() {
        let t = CancelToken::new();
        assert_eq!(t.check(), None);
        assert!(t.cancel(CancelReason::User));
        assert!(!t.cancel(CancelReason::Deadline), "second cancel must lose");
        assert_eq!(t.check(), Some(CancelReason::User));
        t.reset();
        assert_eq!(t.check(), None);
    }

    #[test]
    fn clear_transient_only_clears_peer_panic() {
        let t = CancelToken::new();
        t.cancel(CancelReason::PeerPanic);
        t.clear_transient();
        assert_eq!(t.check(), None);
        t.cancel(CancelReason::User);
        t.clear_transient();
        assert_eq!(t.check(), Some(CancelReason::User), "user cancel must survive");
    }

    #[test]
    fn checkpoint_maps_reasons_to_typed_errors() {
        let g = QueryGovernor::unlimited();
        assert!(g.checkpoint().is_ok());
        g.cancel_token().cancel(CancelReason::User);
        let err = g.checkpoint().unwrap_err();
        assert_eq!(err.kind, ErrorKind::Cancelled(CancelReason::User));
        assert_eq!(err.message, "statement cancelled (user)");
    }

    #[test]
    fn expired_deadline_is_a_typed_error() {
        let g = QueryGovernor::for_statement(Arc::new(CancelToken::new()), Some(0), None);
        let err = g.checkpoint().unwrap_err();
        assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
        assert_eq!(err.message, "statement deadline exceeded (timeout 0 ms)");
    }

    #[test]
    fn budget_charges_accumulate_into_a_typed_error() {
        let g = QueryGovernor::for_statement(Arc::new(CancelToken::new()), None, Some(100));
        assert!(g.charge(60).is_ok());
        let err = g.charge(60).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BudgetExceeded);
        assert_eq!(err.message, "memory budget exceeded (limit 100 bytes)");
        assert_eq!(g.mem_highwater(), 120, "high-water records the attempted usage");
    }

    #[test]
    fn check_rows_only_checkpoints_at_the_interval() {
        let g = QueryGovernor::unlimited();
        g.cancel_token().cancel(CancelReason::User);
        let mut acc = 0;
        assert!(g.check_rows(&mut acc, ROWS_PER_CHECK - 1).is_ok(), "below interval: no check");
        assert!(g.check_rows(&mut acc, 1).is_err(), "interval reached: cancellation observed");
        assert_eq!(acc, 0, "accumulator resets after a checkpoint");
    }
}

//! Plan-level type/schema inference and the optimizer translation
//! validator — the `fsdm-planck` core.
//!
//! [`infer`] walks a [`Query`] plan bottom-up and computes each
//! operator's output schema: column names, scalar types, and
//! nullability, derived from table schemas, virtual-column definitions,
//! DMDV `JSON_TABLE` column lists, and `JSON_VALUE` RETURNING clauses.
//! Inference is **sound** with respect to the executor: whatever
//! [`crate::database::Database::execute`] materializes for a plan is
//! admitted by the inferred schema, and a column inferred non-nullable
//! never materializes SQL NULL. Findings are reported as
//! [`fsdm_analyze::Diagnostic`]s with the stable `PK001`–`PK006` codes,
//! rendered by the same machinery as the `fsdm-analyze` lint.
//!
//! [`rewrite_violations`] is the translation validator: it proves each
//! [`crate::optimizer::optimize`] rewrite schema-equivalent to its input
//! (same columns, same types, nullability no looser) and shows the
//! determinism and parallel-safety classification of the plan — which
//! morsel-merge discipline [`crate::parallel::run_morsels`] needs — is
//! preserved. `optimize` enforces it with a `debug_assert!` on every
//! rewrite; [`check_plan`] exposes the same verdict as diagnostics.

use fsdm_analyze::{Code, Diagnostic};
use fsdm_sqljson::json_table::{ColumnDef, NestedDef};
use fsdm_sqljson::{Datum, Span, SqlType};

use crate::database::Database;
use crate::expr::{AggFun, Expr, ScalarFun};
use crate::query::{Query, SortKey, WindowFun};
use crate::schema::ColType;

/// The scalar-type lattice of the inference pass. `Null` is the bottom
/// (an expression that is always SQL NULL), `Any` the top (a value the
/// pass cannot constrain, e.g. `RETURNING ANY`); `Int`/`Float` both
/// admit the executor's numeric datums but let the pass distinguish
/// counts from measures statically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarType {
    /// Always SQL NULL.
    Null,
    /// Boolean.
    Bool,
    /// Integer-valued number (counts, lengths, positions).
    Int,
    /// General number.
    Float,
    /// String.
    Str,
    /// A JSON document column (materializes as its text rendering).
    Json,
    /// Unconstrained.
    Any,
}

impl ScalarType {
    /// Lowercase name used by schema renderings.
    pub fn label(&self) -> &'static str {
        match self {
            ScalarType::Null => "null",
            ScalarType::Bool => "bool",
            ScalarType::Int => "int",
            ScalarType::Float => "float",
            ScalarType::Str => "str",
            ScalarType::Json => "json",
            ScalarType::Any => "any",
        }
    }

    /// True for `Int`/`Float`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, ScalarType::Int | ScalarType::Float)
    }

    /// Least upper bound in the lattice (numeric widening, else `Any`).
    pub fn join(self, other: ScalarType) -> ScalarType {
        match (self, other) {
            (a, b) if a == b => a,
            (ScalarType::Null, t) | (t, ScalarType::Null) => t,
            (a, b) if a.is_numeric() && b.is_numeric() => ScalarType::Float,
            _ => ScalarType::Any,
        }
    }

    /// Soundness predicate: can a **non-null** materialized datum of this
    /// static type be `d`? (JSON columns materialize as their text
    /// rendering, integers as general numbers.)
    pub fn admits(&self, d: &Datum) -> bool {
        match self {
            ScalarType::Any => true,
            ScalarType::Null => d.is_null(),
            ScalarType::Bool => matches!(d, Datum::Bool(_)),
            ScalarType::Int | ScalarType::Float => matches!(d, Datum::Num(_)),
            ScalarType::Str | ScalarType::Json => matches!(d, Datum::Str(_)),
        }
    }

    fn of_sql_type(ty: SqlType) -> ScalarType {
        match ty {
            SqlType::Varchar2(_) => ScalarType::Str,
            SqlType::Number => ScalarType::Float,
            SqlType::Boolean => ScalarType::Bool,
            SqlType::Any => ScalarType::Any,
        }
    }

    fn of_col_type(ty: &ColType) -> ScalarType {
        match ty {
            ColType::Number => ScalarType::Float,
            ColType::Varchar2(_) => ScalarType::Str,
            ColType::Boolean => ScalarType::Bool,
            ColType::Json(_) => ScalarType::Json,
        }
    }
}

/// One inferred output column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColInfo {
    /// Column name.
    pub name: String,
    /// Inferred scalar type.
    pub ty: ScalarType,
    /// May this column materialize SQL NULL? Never under-approximated:
    /// `false` is a proof the executor cannot produce NULL here.
    pub nullable: bool,
}

/// The inferred output schema of a plan node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanSchema {
    /// Columns in output position order.
    pub cols: Vec<ColInfo>,
}

impl PlanSchema {
    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Column info by name.
    pub fn col(&self, name: &str) -> Option<&ColInfo> {
        self.cols.iter().find(|c| c.name == name)
    }

    /// One-line rendering, e.g. `did:float?, reference:str?` (the `?`
    /// marks nullable columns).
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .cols
            .iter()
            .map(|c| format!("{}:{}{}", c.name, c.ty.label(), if c.nullable { "?" } else { "" }))
            .collect();
        parts.join(", ")
    }
}

/// How an operator participates in the morsel-parallel executor (see
/// `crates/store/src/parallel.rs`): fully morsel-parallel with
/// order-preserving reassembly, parallel with a serial merge barrier, or
/// a serial tail. Ordered from least to most restrictive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ParallelSafety {
    /// Per-morsel work reassembled in morsel order (Scan, Filter,
    /// Project, JsonTable).
    Morsel,
    /// Parallel phases joined by a serial merge barrier (HashJoin build,
    /// GroupBy merge, Sort/Window tail).
    Barrier,
    /// Inherently serial (Limit truncation, Sample selection).
    Serial,
}

/// The inference result: the root schema plus every finding made while
/// walking the plan.
#[derive(Debug, Clone)]
pub struct Inference {
    /// Output schema of the plan root.
    pub schema: PlanSchema,
    /// Findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Inference {
    /// Error-severity findings (the CI budget).
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == fsdm_analyze::Severity::Error).count()
    }
}

/// Infer the output schema of `plan` and collect diagnostics. Never
/// fails: unresolvable references produce `PK001` findings and an
/// `Any`-typed placeholder instead of an error.
pub fn infer(db: &Database, plan: &Query) -> Inference {
    let mut diags = Vec::new();
    let schema = infer_plan(db, plan, &mut diags);
    Inference { schema, diagnostics: diags }
}

/// This node's parallel-execution class (children not considered).
pub fn op_safety(q: &Query) -> ParallelSafety {
    match q {
        Query::Scan { .. }
        | Query::ViewScan { .. }
        | Query::Filter { .. }
        | Query::Project { .. }
        | Query::JsonTable { .. } => ParallelSafety::Morsel,
        Query::HashJoin { .. }
        | Query::GroupBy { .. }
        | Query::Sort { .. }
        | Query::Window { .. } => ParallelSafety::Barrier,
        Query::Limit { .. } | Query::Sample { .. } => ParallelSafety::Serial,
    }
}

/// The whole plan's class: the most restrictive operator in the tree
/// (views expand to their definitions first).
pub fn plan_safety(db: &Database, q: &Query) -> ParallelSafety {
    let own = match q {
        Query::ViewScan { view } => match db.view(view) {
            Some(inner) => plan_safety(db, inner),
            None => ParallelSafety::Morsel,
        },
        other => op_safety(other),
    };
    let children = match q {
        Query::Filter { input, .. }
        | Query::Project { input, .. }
        | Query::JsonTable { input, .. }
        | Query::GroupBy { input, .. }
        | Query::Sort { input, .. }
        | Query::Window { input, .. }
        | Query::Limit { input, .. }
        | Query::Sample { input, .. } => plan_safety(db, input),
        Query::HashJoin { left, right, .. } => plan_safety(db, left).max(plan_safety(db, right)),
        Query::Scan { .. } | Query::ViewScan { .. } => ParallelSafety::Morsel,
    };
    own.max(children)
}

/// Is the plan's output order pinned by the plan itself? False when a
/// Sort or window ORDER BY leaves ties to the input order (empty key
/// list, constant key, or duplicated key expression) — the conditions
/// `PK005` reports. Rewrites must preserve this classification.
pub fn plan_deterministic(db: &Database, q: &Query) -> bool {
    let own = match q {
        Query::Sort { keys, .. } => order_keys_pin(keys),
        Query::Window { order, .. } => order_keys_pin(order),
        Query::ViewScan { view } => match db.view(view) {
            Some(inner) => return plan_deterministic(db, inner),
            None => true,
        },
        _ => true,
    };
    let children = match q {
        Query::Filter { input, .. }
        | Query::Project { input, .. }
        | Query::JsonTable { input, .. }
        | Query::GroupBy { input, .. }
        | Query::Sort { input, .. }
        | Query::Window { input, .. }
        | Query::Limit { input, .. }
        | Query::Sample { input, .. } => plan_deterministic(db, input),
        Query::HashJoin { left, right, .. } => {
            plan_deterministic(db, left) && plan_deterministic(db, right)
        }
        Query::Scan { .. } | Query::ViewScan { .. } => true,
    };
    own && children
}

fn order_keys_pin(keys: &[SortKey]) -> bool {
    if keys.is_empty() {
        return false;
    }
    let mut seen: Vec<String> = Vec::with_capacity(keys.len());
    for k in keys {
        if matches!(k.expr, Expr::Lit(_)) {
            return false;
        }
        let text = format!("{:?}", k.expr);
        if seen.contains(&text) {
            return false;
        }
        seen.push(text);
    }
    true
}

/// The translation validator: every way `after` fails to be a valid
/// rewrite of `before` — schema equivalence (same columns, same types,
/// nullability no looser) plus preserved determinism and parallel-safety
/// classification. Empty means the rewrite is proven equivalent.
pub fn rewrite_violations(db: &Database, before: &Query, after: &Query) -> Vec<String> {
    let mut out = Vec::new();
    let b = infer(db, before).schema;
    let a = infer(db, after).schema;
    if a.width() != b.width() {
        out.push(format!("rewrite changed the column count: {} -> {}", b.width(), a.width()));
        return out;
    }
    for (i, (bc, ac)) in b.cols.iter().zip(&a.cols).enumerate() {
        if bc.name != ac.name {
            out.push(format!("column {i} renamed: {} -> {}", bc.name, ac.name));
        }
        if bc.ty != ac.ty {
            out.push(format!(
                "column {} changed type: {} -> {}",
                bc.name,
                bc.ty.label(),
                ac.ty.label()
            ));
        }
        if ac.nullable && !bc.nullable {
            out.push(format!("column {} loosened nullability", bc.name));
        }
    }
    let (bs, asf) = (plan_safety(db, before), plan_safety(db, after));
    if bs != asf {
        out.push(format!("parallel-safety class changed: {bs:?} -> {asf:?}"));
    }
    let (bd, ad) = (plan_deterministic(db, before), plan_deterministic(db, after));
    if bd != ad {
        out.push(format!("determinism class changed: {bd} -> {ad}"));
    }
    out
}

/// The full static gate over one plan: inference findings, then the
/// translation validator and the idempotence check run against the
/// optimizer's actual output, reported as `PK006` findings.
pub fn check_plan(db: &Database, plan: &Query) -> Inference {
    let mut inf = infer(db, plan);
    let optimized = crate::optimizer::optimize(db, plan.clone());
    for v in rewrite_violations(db, plan, &optimized) {
        inf.diagnostics.push(node_diag(Code::RewriteDivergence, plan, v));
    }
    let twice = crate::optimizer::optimize(db, optimized.clone());
    if format!("{twice:?}") != format!("{optimized:?}") {
        inf.diagnostics.push(node_diag(
            Code::RewriteDivergence,
            plan,
            "optimize(optimize(p)) != optimize(p): a rewrite re-fires on its own output"
                .to_string(),
        ));
    }
    inf
}

/// A finding anchored on a plan node: the node's one-line EXPLAIN
/// rendering stands in for the path text the span indexes.
fn node_diag(code: Code, node: &Query, message: String) -> Diagnostic {
    let label = node_label(node);
    Diagnostic::new(code, Span::new(0, label.len()), &label, message)
}

fn node_label(node: &Query) -> String {
    node.render().lines().next().unwrap_or_default().to_string()
}

/// An inferred expression: scalar type + nullability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ExprType {
    ty: ScalarType,
    nullable: bool,
}

impl ExprType {
    fn new(ty: ScalarType, nullable: bool) -> ExprType {
        ExprType { ty, nullable }
    }

    fn any() -> ExprType {
        ExprType::new(ScalarType::Any, true)
    }
}

fn infer_plan(db: &Database, plan: &Query, diags: &mut Vec<Diagnostic>) -> PlanSchema {
    match plan {
        Query::Scan { table, filter } => {
            let Some(t) = db.table(table) else {
                diags.push(node_diag(
                    Code::UnknownColumn,
                    plan,
                    format!("scan of unknown table `{table}`"),
                ));
                return PlanSchema::default();
            };
            let mut cols: Vec<ColInfo> = t
                .schema
                .columns
                .iter()
                .map(|c| ColInfo {
                    name: c.name.clone(),
                    ty: ScalarType::of_col_type(&c.ty),
                    nullable: true,
                })
                .collect();
            // virtual columns are expressions over the base row only
            let base = PlanSchema { cols: cols.clone() };
            for vc in &t.virtual_columns {
                let et = infer_expr(&vc.expr, &base, plan, diags);
                cols.push(ColInfo { name: vc.name.clone(), ty: et.ty, nullable: et.nullable });
            }
            let schema = PlanSchema { cols };
            if let Some(pred) = filter {
                check_predicate(pred, &schema, plan, diags);
            }
            schema
        }
        Query::ViewScan { view } => match db.view(view) {
            Some(inner) => infer_plan(db, inner, diags),
            None => {
                diags.push(node_diag(
                    Code::UnknownColumn,
                    plan,
                    format!("scan of unknown view `{view}`"),
                ));
                PlanSchema::default()
            }
        },
        Query::Filter { input, pred } => {
            let schema = infer_plan(db, input, diags);
            check_predicate(pred, &schema, plan, diags);
            schema
        }
        Query::Project { input, exprs } => {
            let input_schema = infer_plan(db, input, diags);
            let mut cols = Vec::with_capacity(exprs.len());
            for (name, e) in exprs {
                let et = infer_expr(e, &input_schema, plan, diags);
                cols.push(ColInfo { name: name.clone(), ty: et.ty, nullable: et.nullable });
            }
            check_duplicates(&cols, plan, diags);
            PlanSchema { cols }
        }
        Query::JsonTable { input, json_col, def } => {
            let mut schema = infer_plan(db, input, diags);
            check_json_col(*json_col, &schema, plan, diags);
            // outer semantics: every JSON_TABLE column is NULL-padded
            // when the document yields no rows, so all are nullable
            collect_jt_cols(&def.columns, &def.nested, &mut schema.cols);
            schema
        }
        Query::HashJoin { left, right, left_key, right_key } => {
            let l = infer_plan(db, left, diags);
            let r = infer_plan(db, right, diags);
            let lk = join_key(&l, *left_key, "left", plan, diags);
            let rk = join_key(&r, *right_key, "right", plan, diags);
            if let (Some(lt), Some(rt)) = (lk, rk) {
                let hash_compatible = lt == rt
                    || (lt.is_numeric() && rt.is_numeric())
                    || lt == ScalarType::Any
                    || rt == ScalarType::Any;
                if !hash_compatible {
                    diags.push(node_diag(
                        Code::PlanTypeMismatch,
                        plan,
                        format!("join keys can never hash-match: {} vs {}", lt.label(), rt.label()),
                    ));
                }
            }
            let mut cols = l.cols;
            cols.extend(r.cols);
            PlanSchema { cols }
        }
        Query::GroupBy { input, keys, aggs } => {
            let input_schema = infer_plan(db, input, diags);
            let mut cols = Vec::with_capacity(keys.len() + aggs.len());
            for (name, e) in keys {
                let et = infer_expr(e, &input_schema, plan, diags);
                cols.push(ColInfo { name: name.clone(), ty: et.ty, nullable: et.nullable });
            }
            for spec in aggs {
                cols.push(infer_agg(spec, keys.is_empty(), &input_schema, plan, diags));
            }
            check_duplicates(&cols, plan, diags);
            PlanSchema { cols }
        }
        Query::Sort { input, keys } => {
            let schema = infer_plan(db, input, diags);
            check_order_keys(keys, &schema, "sort", plan, diags);
            schema
        }
        Query::Window { input, name, fun, order } => {
            let mut schema = infer_plan(db, input, diags);
            check_order_keys(order, &schema, "window ORDER BY", plan, diags);
            let WindowFun::Lag { expr, offset, default } = fun;
            let et = infer_expr(expr, &schema, plan, diags);
            let (ty, nullable) = match default {
                Some(d) => {
                    let dt = infer_expr(d, &schema, plan, diags);
                    (et.ty.join(dt.ty), et.nullable || dt.nullable)
                }
                // rows before the window's start get NULL
                None => (et.ty, et.nullable || *offset > 0),
            };
            if schema.cols.iter().any(|c| &c.name == name) {
                diags.push(node_diag(
                    Code::ArityMismatch,
                    plan,
                    format!("window column `{name}` duplicates an input column"),
                ));
            }
            schema.cols.push(ColInfo { name: name.clone(), ty, nullable });
            schema
        }
        Query::Limit { input, .. } | Query::Sample { input, .. } => infer_plan(db, input, diags),
    }
}

fn join_key(
    side: &PlanSchema,
    key: usize,
    which: &str,
    node: &Query,
    diags: &mut Vec<Diagnostic>,
) -> Option<ScalarType> {
    match side.cols.get(key) {
        Some(c) => {
            if c.ty == ScalarType::Json {
                // the build/probe loops only accept scalar cells: a JSON
                // cell key never enters the hash table
                diags.push(node_diag(
                    Code::PlanTypeMismatch,
                    node,
                    format!("{which} join key `{}` is a JSON column and never matches", c.name),
                ));
            }
            Some(c.ty)
        }
        None => {
            diags.push(node_diag(
                Code::UnknownColumn,
                node,
                format!(
                    "{which} join key #{key} is outside the input schema (width {})",
                    side.width()
                ),
            ));
            None
        }
    }
}

fn infer_agg(
    spec: &crate::query::AggSpec,
    global: bool,
    input: &PlanSchema,
    node: &Query,
    diags: &mut Vec<Diagnostic>,
) -> ColInfo {
    let arg = match (&spec.arg, spec.fun) {
        (None, AggFun::CountStar) => None,
        (None, fun) => {
            diags.push(node_diag(
                Code::ArityMismatch,
                node,
                format!("aggregate `{}` ({fun:?}) needs an argument", spec.name),
            ));
            None
        }
        (Some(e), _) => Some(infer_expr(e, input, node, diags)),
    };
    let (ty, nullable) = match spec.fun {
        AggFun::CountStar | AggFun::Count => (ScalarType::Int, false),
        AggFun::Sum | AggFun::Avg => {
            if let Some(a) = &arg {
                if a.ty == ScalarType::Bool {
                    diags.push(node_diag(
                        Code::PlanTypeMismatch,
                        node,
                        format!("`{}`: SUM/AVG over a boolean is always NULL", spec.name),
                    ));
                }
            }
            // NULL for an empty global group or when no argument value
            // is numeric; groups keyed on at least one row with a
            // non-null numeric argument produce a number
            let nullable = global || arg.map(|a| a.nullable || !a.ty.is_numeric()).unwrap_or(true);
            (ScalarType::Float, nullable)
        }
        AggFun::Min | AggFun::Max => {
            let a = arg.unwrap_or_else(ExprType::any);
            (a.ty, global || a.nullable)
        }
    };
    ColInfo { name: spec.name.clone(), ty, nullable }
}

fn check_duplicates(cols: &[ColInfo], node: &Query, diags: &mut Vec<Diagnostic>) {
    for (i, c) in cols.iter().enumerate() {
        if cols.iter().take(i).any(|e| e.name == c.name) {
            diags.push(node_diag(
                Code::ArityMismatch,
                node,
                format!("duplicate output column `{}`", c.name),
            ));
        }
    }
}

fn check_order_keys(
    keys: &[SortKey],
    schema: &PlanSchema,
    what: &str,
    node: &Query,
    diags: &mut Vec<Diagnostic>,
) {
    if keys.is_empty() {
        diags.push(node_diag(
            Code::UnstableOrderKey,
            node,
            format!("{what} has no keys: output order is the input order"),
        ));
        return;
    }
    let mut seen: Vec<String> = Vec::with_capacity(keys.len());
    for k in keys {
        infer_expr(&k.expr, schema, node, diags);
        if matches!(k.expr, Expr::Lit(_)) {
            diags.push(node_diag(
                Code::UnstableOrderKey,
                node,
                format!("{what} key {:?} is constant: every row ties", k.expr),
            ));
        }
        let text = format!("{:?}", k.expr);
        if seen.contains(&text) {
            diags.push(node_diag(
                Code::UnstableOrderKey,
                node,
                format!("{what} key {text} is duplicated"),
            ));
        }
        seen.push(text);
    }
}

fn check_json_col(json_col: usize, input: &PlanSchema, node: &Query, diags: &mut Vec<Diagnostic>) {
    match input.cols.get(json_col) {
        None => diags.push(node_diag(
            Code::UnknownColumn,
            node,
            format!(
                "JSON column #{json_col} is outside the input schema (width {})",
                input.width()
            ),
        )),
        Some(c) if c.ty != ScalarType::Json && c.ty != ScalarType::Any => {
            diags.push(node_diag(
                Code::PlanTypeMismatch,
                node,
                format!("column `{}` ({}) is not a JSON column", c.name, c.ty.label()),
            ));
        }
        Some(_) => {}
    }
}

/// Append the JSON_TABLE output columns in
/// [`fsdm_sqljson::JsonTableDef::column_names`] order (level columns
/// first, then nested blocks, depth-first).
fn collect_jt_cols(cols: &[ColumnDef], nested: &[NestedDef], out: &mut Vec<ColInfo>) {
    for c in cols {
        out.push(ColInfo {
            name: c.name.clone(),
            ty: ScalarType::of_sql_type(c.ty),
            nullable: true,
        });
    }
    for n in nested {
        collect_jt_cols(&n.columns, &n.nested, out);
    }
}

/// A predicate position (Scan filter / Filter): anything statically
/// non-boolean can never accept a row.
fn check_predicate(pred: &Expr, schema: &PlanSchema, node: &Query, diags: &mut Vec<Diagnostic>) {
    let et = infer_expr(pred, schema, node, diags);
    if !matches!(et.ty, ScalarType::Bool | ScalarType::Null | ScalarType::Any) {
        diags.push(node_diag(
            Code::PlanTypeMismatch,
            node,
            format!("filter predicate has type {}, not boolean", et.ty.label()),
        ));
    }
}

/// Expected argument count per scalar function (an inclusive range).
fn fun_arity(fun: ScalarFun) -> (usize, usize) {
    match fun {
        ScalarFun::Upper | ScalarFun::Lower | ScalarFun::Length | ScalarFun::Abs => (1, 1),
        ScalarFun::Concat | ScalarFun::Instr | ScalarFun::Nvl => (2, 2),
        ScalarFun::Substr => (2, 3),
    }
}

fn infer_expr(e: &Expr, input: &PlanSchema, node: &Query, diags: &mut Vec<Diagnostic>) -> ExprType {
    match e {
        Expr::Col(i) => match input.cols.get(*i) {
            Some(c) => {
                // a JSON cell referenced as a scalar decodes to its text
                let ty = if c.ty == ScalarType::Json { ScalarType::Str } else { c.ty };
                ExprType::new(ty, c.nullable)
            }
            None => {
                diags.push(node_diag(
                    Code::UnknownColumn,
                    node,
                    format!("col#{i} is outside the input schema (width {})", input.width()),
                ));
                ExprType::any()
            }
        },
        Expr::Lit(d) => match d {
            Datum::Null => ExprType::new(ScalarType::Null, true),
            Datum::Bool(_) => ExprType::new(ScalarType::Bool, false),
            Datum::Str(_) => ExprType::new(ScalarType::Str, false),
            Datum::Num(n) => {
                let ty = if n.to_i64().is_some() { ScalarType::Int } else { ScalarType::Float };
                ExprType::new(ty, false)
            }
        },
        Expr::Cmp(a, _, b) => {
            let (at, bt) = (infer_expr(a, input, node, diags), infer_expr(b, input, node, diags));
            if at.ty == ScalarType::Null || bt.ty == ScalarType::Null {
                diags.push(node_diag(
                    Code::NullComparison,
                    node,
                    "comparison with an operand that is always SQL NULL is never true".to_string(),
                ));
            }
            if bool_mismatch(at.ty, bt.ty) {
                diags.push(node_diag(
                    Code::PlanTypeMismatch,
                    node,
                    format!("comparing {} with {} is always unknown", at.ty.label(), bt.ty.label()),
                ));
            }
            // NULL operands and failed cross-type coercion both yield
            // unknown, which materializes as NULL outside a filter
            let nullable = at.nullable || bt.nullable || !always_comparable(at.ty, bt.ty);
            ExprType::new(ScalarType::Bool, nullable)
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            let (at, bt) = (infer_expr(a, input, node, diags), infer_expr(b, input, node, diags));
            for t in [at, bt] {
                check_boolean_operand(t.ty, "AND/OR", node, diags);
            }
            ExprType::new(ScalarType::Bool, at.nullable || bt.nullable)
        }
        Expr::Not(a) => {
            let at = infer_expr(a, input, node, diags);
            check_boolean_operand(at.ty, "NOT", node, diags);
            ExprType::new(ScalarType::Bool, at.nullable)
        }
        Expr::IsNull(a) => {
            infer_expr(a, input, node, diags);
            ExprType::new(ScalarType::Bool, false)
        }
        Expr::InList(a, list) => {
            let at = infer_expr(a, input, node, diags);
            let list_has = |p: fn(&Datum) -> bool| list.iter().any(p);
            let mismatch = match at.ty {
                ScalarType::Bool => !list.is_empty() && !list_has(|d| matches!(d, Datum::Bool(_))),
                ScalarType::Int | ScalarType::Float | ScalarType::Str => {
                    !list.is_empty() && list.iter().all(|d| matches!(d, Datum::Bool(_)))
                }
                _ => false,
            };
            if mismatch {
                diags.push(node_diag(
                    Code::PlanTypeMismatch,
                    node,
                    format!("`IN` list can never match a {} operand", at.ty.label()),
                ));
            }
            ExprType::new(ScalarType::Bool, at.nullable)
        }
        Expr::Like(a, _) => {
            let at = infer_expr(a, input, node, diags);
            ExprType::new(ScalarType::Bool, at.nullable)
        }
        Expr::Arith(a, _, b) => {
            let (at, bt) = (infer_expr(a, input, node, diags), infer_expr(b, input, node, diags));
            for t in [at, bt] {
                if t.ty == ScalarType::Bool {
                    diags.push(node_diag(
                        Code::PlanTypeMismatch,
                        node,
                        "arithmetic over a boolean operand always errors".to_string(),
                    ));
                }
            }
            if at.ty == ScalarType::Null || bt.ty == ScalarType::Null {
                return ExprType::new(ScalarType::Null, true);
            }
            ExprType::new(ScalarType::Float, at.nullable || bt.nullable)
        }
        Expr::Fun(fun, args) => {
            let (lo, hi) = fun_arity(*fun);
            if args.len() < lo || args.len() > hi {
                diags.push(node_diag(
                    Code::ArityMismatch,
                    node,
                    format!("{fun:?} takes {lo}..={hi} arguments, got {}", args.len()),
                ));
            }
            let arg_types: Vec<ExprType> =
                args.iter().map(|a| infer_expr(a, input, node, diags)).collect();
            let arg = |i: usize| arg_types.get(i).copied().unwrap_or(ExprType::any());
            match fun {
                ScalarFun::Upper | ScalarFun::Lower => {
                    ExprType::new(ScalarType::Str, arg(0).nullable)
                }
                ScalarFun::Length => ExprType::new(ScalarType::Int, arg(0).nullable),
                ScalarFun::Concat => {
                    ExprType::new(ScalarType::Str, arg(0).nullable || arg(1).nullable)
                }
                ScalarFun::Instr => {
                    ExprType::new(ScalarType::Int, arg(0).nullable || arg(1).nullable)
                }
                ScalarFun::Substr => ExprType::new(ScalarType::Str, arg(0).nullable),
                // non-numeric input nulls out instead of erroring
                ScalarFun::Abs => {
                    ExprType::new(ScalarType::Float, arg(0).nullable || !arg(0).ty.is_numeric())
                }
                ScalarFun::Nvl => {
                    let (a, b) = (arg(0), arg(1));
                    ExprType::new(a.ty.join(b.ty), a.nullable && b.nullable)
                }
            }
        }
        Expr::JsonValue { col, ty, .. } => {
            check_expr_json_col(*col, input, node, diags);
            ExprType::new(ScalarType::of_sql_type(*ty), true)
        }
        Expr::JsonExists { col, .. } => {
            check_expr_json_col(*col, input, node, diags);
            ExprType::new(ScalarType::Bool, false)
        }
    }
}

fn check_expr_json_col(col: usize, input: &PlanSchema, node: &Query, diags: &mut Vec<Diagnostic>) {
    match input.cols.get(col) {
        None => diags.push(node_diag(
            Code::UnknownColumn,
            node,
            format!("col#{col} is outside the input schema (width {})", input.width()),
        )),
        Some(c) if c.ty != ScalarType::Json && c.ty != ScalarType::Any => {
            diags.push(node_diag(
                Code::PlanTypeMismatch,
                node,
                format!(
                    "SQL/JSON operator over `{}` ({}), which is not a JSON column",
                    c.name,
                    c.ty.label()
                ),
            ));
        }
        Some(_) => {}
    }
}

fn check_boolean_operand(ty: ScalarType, what: &str, node: &Query, diags: &mut Vec<Diagnostic>) {
    if matches!(ty, ScalarType::Int | ScalarType::Float | ScalarType::Str | ScalarType::Json) {
        diags.push(node_diag(
            Code::PlanTypeMismatch,
            node,
            format!("{what} over a non-boolean operand ({})", ty.label()),
        ));
    }
}

/// Non-null operands of these type pairs always produce an ordering, so
/// the comparison itself introduces no NULL.
fn always_comparable(a: ScalarType, b: ScalarType) -> bool {
    (a.is_numeric() && b.is_numeric())
        || (a == ScalarType::Str && b == ScalarType::Str)
        || (a == ScalarType::Bool && b == ScalarType::Bool)
}

/// Bool against a concrete non-bool scalar never compares under
/// [`Datum::sql_cmp`] (JSON cells decode to text first).
fn bool_mismatch(a: ScalarType, b: ScalarType) -> bool {
    let concrete =
        |t: ScalarType| matches!(t, ScalarType::Int | ScalarType::Float | ScalarType::Str);
    (a == ScalarType::Bool && concrete(b)) || (b == ScalarType::Bool && concrete(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::jsonaccess::JsonStorage;
    use crate::query::AggSpec;
    use crate::schema::{ColumnSpec, ConstraintMode, TableSchema};
    use crate::table::{InsertValue, Table};
    use fsdm_sqljson::parse_path;

    /// `t(n NUMBER, s VARCHAR2, b BOOLEAN, j JSON)` with a few rows.
    fn db() -> Database {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnSpec::new("n", ColType::Number),
                ColumnSpec::new("s", ColType::Varchar2(32)),
                ColumnSpec::new("b", ColType::Boolean),
                ColumnSpec::json("j", JsonStorage::Text, ConstraintMode::IsJson),
            ],
        ));
        for i in 0..3i64 {
            t.insert(vec![
                i.into(),
                format!("s{i}").as_str().into(),
                Datum::Bool(i % 2 == 0).into(),
                InsertValue::Json(format!(r#"{{"price":{i}}}"#)),
            ])
            .unwrap();
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    fn codes(inf: &Inference) -> Vec<&'static str> {
        inf.diagnostics.iter().map(|d| d.code.id()).collect()
    }

    #[test]
    fn scan_schema_reflects_column_types() {
        let inf = infer(&db(), &Query::scan("t"));
        assert!(inf.diagnostics.is_empty(), "{:?}", inf.diagnostics);
        assert_eq!(inf.schema.render(), "n:float?, s:str?, b:bool?, j:json?");
    }

    #[test]
    fn pk001_unknown_table_view_and_column() {
        let db = db();
        assert_eq!(codes(&infer(&db, &Query::scan("nope"))), [Code::UnknownColumn.id()]);
        assert_eq!(codes(&infer(&db, &Query::view("nope"))), [Code::UnknownColumn.id()]);
        let oob = Query::Project {
            input: Box::new(Query::scan("t")),
            exprs: vec![("x".into(), Expr::Col(9))],
        };
        assert_eq!(codes(&infer(&db, &oob)), [Code::UnknownColumn.id()]);
        let join = Query::HashJoin {
            left: Box::new(Query::scan("t")),
            right: Box::new(Query::scan("t")),
            left_key: 0,
            right_key: 11,
        };
        assert_eq!(codes(&infer(&db, &join)), [Code::UnknownColumn.id()]);
    }

    #[test]
    fn pk001_negative_resolved_references_are_clean() {
        let db = db();
        let plan = Query::Project {
            input: Box::new(Query::scan("t")),
            exprs: vec![("n".into(), Expr::Col(0)), ("s".into(), Expr::Col(1))],
        };
        assert!(infer(&db, &plan).diagnostics.is_empty());
    }

    #[test]
    fn pk002_bool_vs_number_comparison() {
        let db = db();
        let plan =
            Query::scan("t").filter(Expr::cmp(Expr::Col(2), CmpOp::Eq, Expr::Lit(7i64.into())));
        assert_eq!(codes(&infer(&db, &plan)), [Code::PlanTypeMismatch.id()]);
        // negative: number against number compares fine
        let ok =
            Query::scan("t").filter(Expr::cmp(Expr::Col(0), CmpOp::Eq, Expr::Lit(7i64.into())));
        assert!(infer(&db, &ok).diagnostics.is_empty());
    }

    #[test]
    fn pk002_join_key_agg_and_predicate_positions() {
        let db = db();
        // str joined against float can never hash-match
        let join = Query::HashJoin {
            left: Box::new(Query::scan("t")),
            right: Box::new(Query::scan("t")),
            left_key: 1,
            right_key: 0,
        };
        assert_eq!(codes(&infer(&db, &join)), [Code::PlanTypeMismatch.id()]);
        // SUM over a boolean is always NULL
        let agg = Query::GroupBy {
            input: Box::new(Query::scan("t")),
            keys: vec![],
            aggs: vec![AggSpec { name: "s".into(), fun: AggFun::Sum, arg: Some(Expr::Col(2)) }],
        };
        assert_eq!(codes(&infer(&db, &agg)), [Code::PlanTypeMismatch.id()]);
        // a non-boolean filter predicate accepts nothing
        let pred = Query::scan("t").filter(Expr::Col(0));
        assert_eq!(codes(&infer(&db, &pred)), [Code::PlanTypeMismatch.id()]);
        // JSON_VALUE over a scalar column always errors at runtime
        let jv = Query::scan("t").filter(Expr::cmp(
            Expr::json_value(0, parse_path("$.price").unwrap(), SqlType::Number),
            CmpOp::Eq,
            Expr::Lit(1i64.into()),
        ));
        assert_eq!(codes(&infer(&db, &jv)), [Code::PlanTypeMismatch.id()]);
    }

    #[test]
    fn pk002_negative_json_operators_on_json_columns() {
        let db = db();
        let plan = Query::scan("t").filter(Expr::cmp(
            Expr::json_value(3, parse_path("$.price").unwrap(), SqlType::Number),
            CmpOp::Gt,
            Expr::Lit(1i64.into()),
        ));
        assert!(infer(&db, &plan).diagnostics.is_empty());
        let join = Query::HashJoin {
            left: Box::new(Query::scan("t")),
            right: Box::new(Query::scan("t")),
            left_key: 0,
            right_key: 0,
        };
        assert!(infer(&db, &join).diagnostics.is_empty());
    }

    #[test]
    fn pk003_comparison_against_always_null() {
        let db = db();
        let plan =
            Query::scan("t").filter(Expr::cmp(Expr::Col(0), CmpOp::Eq, Expr::Lit(Datum::Null)));
        assert_eq!(codes(&infer(&db, &plan)), [Code::NullComparison.id()]);
        // negative: IS NULL is the right spelling and is clean
        let ok = Query::scan("t").filter(Expr::IsNull(Box::new(Expr::Col(0))));
        assert!(infer(&db, &ok).diagnostics.is_empty());
    }

    #[test]
    fn pk004_arity_and_duplicate_columns() {
        let db = db();
        let bad_arity = Query::Project {
            input: Box::new(Query::scan("t")),
            exprs: vec![("x".into(), Expr::Fun(ScalarFun::Substr, vec![Expr::Col(1)]))],
        };
        assert_eq!(codes(&infer(&db, &bad_arity)), [Code::ArityMismatch.id()]);
        let dup = Query::Project {
            input: Box::new(Query::scan("t")),
            exprs: vec![("x".into(), Expr::Col(0)), ("x".into(), Expr::Col(1))],
        };
        assert_eq!(codes(&infer(&db, &dup)), [Code::ArityMismatch.id()]);
        let missing_arg = Query::GroupBy {
            input: Box::new(Query::scan("t")),
            keys: vec![],
            aggs: vec![AggSpec { name: "m".into(), fun: AggFun::Max, arg: None }],
        };
        assert_eq!(codes(&infer(&db, &missing_arg)), [Code::ArityMismatch.id()]);
        // negative: full arity and distinct names are clean
        let ok = Query::Project {
            input: Box::new(Query::scan("t")),
            exprs: vec![(
                "x".into(),
                Expr::Fun(ScalarFun::Substr, vec![Expr::Col(1), Expr::Lit(1i64.into())]),
            )],
        };
        assert!(infer(&db, &ok).diagnostics.is_empty());
    }

    #[test]
    fn pk005_unstable_sort_keys() {
        let db = db();
        let empty = Query::Sort { input: Box::new(Query::scan("t")), keys: vec![] };
        assert_eq!(codes(&infer(&db, &empty)), [Code::UnstableOrderKey.id()]);
        let constant = Query::Sort {
            input: Box::new(Query::scan("t")),
            keys: vec![SortKey::asc(Expr::Lit(1i64.into()))],
        };
        assert_eq!(codes(&infer(&db, &constant)), [Code::UnstableOrderKey.id()]);
        let dup = Query::Sort {
            input: Box::new(Query::scan("t")),
            keys: vec![SortKey::asc(Expr::Col(0)), SortKey::asc(Expr::Col(0))],
        };
        assert_eq!(codes(&infer(&db, &dup)), [Code::UnstableOrderKey.id()]);
        // negative: a column key pins the order
        let ok = Query::Sort {
            input: Box::new(Query::scan("t")),
            keys: vec![SortKey::asc(Expr::Col(0))],
        };
        assert!(infer(&db, &ok).diagnostics.is_empty());
        assert!(!plan_deterministic(&db, &empty));
        assert!(plan_deterministic(&db, &ok));
    }

    #[test]
    fn pk006_rewrite_violations_catch_schema_drift() {
        let db = db();
        let before = Query::Project {
            input: Box::new(Query::scan("t")),
            exprs: vec![("a".into(), Expr::Col(0)), ("b".into(), Expr::Col(1))],
        };
        // dropped column
        let narrowed = Query::Project {
            input: Box::new(Query::scan("t")),
            exprs: vec![("a".into(), Expr::Col(0))],
        };
        assert!(!rewrite_violations(&db, &before, &narrowed).is_empty());
        // renamed column
        let renamed = Query::Project {
            input: Box::new(Query::scan("t")),
            exprs: vec![("a".into(), Expr::Col(0)), ("c".into(), Expr::Col(1))],
        };
        assert!(!rewrite_violations(&db, &before, &renamed).is_empty());
        // retyped column
        let retyped = Query::Project {
            input: Box::new(Query::scan("t")),
            exprs: vec![("a".into(), Expr::Col(0)), ("b".into(), Expr::Col(0))],
        };
        assert!(!rewrite_violations(&db, &before, &retyped).is_empty());
        // loosened nullability
        let strict = Query::Project {
            input: Box::new(Query::scan("t")),
            exprs: vec![("a".into(), Expr::Lit(1i64.into())), ("b".into(), Expr::Col(1))],
        };
        let loose = Query::Project {
            input: Box::new(Query::scan("t")),
            exprs: vec![("a".into(), Expr::Col(0)), ("b".into(), Expr::Col(1))],
        };
        assert!(!rewrite_violations(&db, &strict, &loose).is_empty());
        // ...but tightening nullability is allowed
        assert!(rewrite_violations(&db, &loose, &strict)
            .iter()
            .all(|v| !v.contains("nullability")));
        // changed parallel-safety class
        let limited = Query::Limit { input: Box::new(before.clone()), n: 10 };
        assert!(!rewrite_violations(&db, &before, &limited).is_empty());
        // negative: identical plans are violation-free
        assert!(rewrite_violations(&db, &before, &before.clone()).is_empty());
    }

    #[test]
    fn pk006_check_plan_is_clean_on_well_formed_plans() {
        let db = db();
        let plan = Query::Sort {
            input: Box::new(Query::scan("t").filter(Expr::cmp(
                Expr::Col(0),
                CmpOp::Gt,
                Expr::Lit(0i64.into()),
            ))),
            keys: vec![SortKey::asc(Expr::Col(0))],
        };
        let inf = check_plan(&db, &plan);
        assert!(inf.diagnostics.is_empty(), "{:?}", inf.diagnostics);
    }

    #[test]
    fn parallel_safety_classes_match_executor_structure() {
        let db = db();
        assert_eq!(plan_safety(&db, &Query::scan("t")), ParallelSafety::Morsel);
        let join = Query::HashJoin {
            left: Box::new(Query::scan("t")),
            right: Box::new(Query::scan("t")),
            left_key: 0,
            right_key: 0,
        };
        assert_eq!(plan_safety(&db, &join), ParallelSafety::Barrier);
        let limited = Query::Limit { input: Box::new(join), n: 1 };
        assert_eq!(plan_safety(&db, &limited), ParallelSafety::Serial);
    }

    #[test]
    fn inference_agrees_with_execution() {
        let db = db();
        let plan = Query::GroupBy {
            input: Box::new(Query::scan("t")),
            keys: vec![("b".into(), Expr::Col(2))],
            aggs: vec![
                AggSpec { name: "cnt".into(), fun: AggFun::CountStar, arg: None },
                AggSpec { name: "total".into(), fun: AggFun::Sum, arg: Some(Expr::Col(0)) },
            ],
        };
        let inf = infer(&db, &plan);
        assert!(inf.diagnostics.is_empty(), "{:?}", inf.diagnostics);
        let res = db.execute(&plan).unwrap();
        assert_eq!(res.columns, inf.schema.cols.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
        for row in &res.rows {
            for (d, c) in row.iter().zip(&inf.schema.cols) {
                if d.is_null() {
                    assert!(c.nullable, "column {} materialized NULL", c.name);
                } else {
                    assert!(
                        c.ty.admits(d),
                        "column {}: {:?} not admitted by {:?}",
                        c.name,
                        d,
                        c.ty
                    );
                }
            }
        }
        // COUNT(*) is proven non-nullable even over an empty global group
        let empty = Query::GroupBy {
            input: Box::new(Query::scan("t").filter(Expr::cmp(
                Expr::Col(0),
                CmpOp::Lt,
                Expr::Lit(0i64.into()),
            ))),
            keys: vec![],
            aggs: vec![
                AggSpec { name: "cnt".into(), fun: AggFun::CountStar, arg: None },
                AggSpec { name: "total".into(), fun: AggFun::Sum, arg: Some(Expr::Col(0)) },
            ],
        };
        let inf = infer(&db, &empty);
        assert!(!inf.schema.cols[0].nullable);
        assert!(inf.schema.cols[1].nullable);
        let res = db.execute(&empty).unwrap();
        assert_eq!(res.rows.len(), 1);
        assert!(!res.rows[0][0].is_null());
        assert!(res.rows[0][1].is_null());
    }
}

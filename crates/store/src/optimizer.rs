//! Plan rewrites. The one that matters for the paper's evaluation is the
//! §6.3 pushdown: "The WHERE predicates on the views are pushed down as
//! JSON_EXISTS() with JSON path predicates to be filtered."
//!
//! A filter over a JSON_TABLE expansion is augmented with a document-level
//! `JSON_EXISTS` pre-filter on the base scan: documents that cannot
//! produce any qualifying row are skipped *before* the (expensive)
//! master-detail expansion. The original row-level filter is kept, so the
//! rewrite never changes results — any document admitted by the exists
//! probe still has its rows checked exactly.
//!
//! The second rewrite is the `fsdm-analyze` handshake (opt-in via
//! [`Database::set_dead_path_pruning`]): a scan-filter conjunct probing a
//! JSON path the table's DataGuide proves empty can never accept a row —
//! `JSON_EXISTS` is false everywhere, and a comparison over `JSON_VALUE`
//! only ever sees SQL NULL — so the scan collapses to a constant-false
//! scan the executor answers without touching a single row.

use fsdm_sqljson::json_table::{ColKind, ColumnDef, JsonTableDef, NestedDef};
use fsdm_sqljson::parse_path;
use fsdm_sqljson::path::{ArraySel, IndexExpr, JsonPath, Step};
use fsdm_sqljson::Datum;

use crate::database::Database;
use crate::expr::{CmpOp, Expr};
use crate::query::Query;
use crate::schema::{ColType, ConstraintMode};

/// Apply all rewrites bottom-up. `db` supplies schema information (scan
/// widths) and view expansion.
///
/// Debug builds run the `fsdm-planck` translation validator on every
/// call (and, through the recursion, on every rewritten subtree): the
/// output plan must be schema-equivalent to the input — same columns,
/// same types, nullability no looser — with its determinism and
/// parallel-safety classes preserved.
pub fn optimize(db: &Database, plan: Query) -> Query {
    #[cfg(debug_assertions)]
    let before = plan.clone();
    let optimized = optimize_inner(db, plan);
    #[cfg(debug_assertions)]
    {
        let violations = crate::typecheck::rewrite_violations(db, &before, &optimized);
        debug_assert!(
            violations.is_empty(),
            "optimizer rewrite is not translation-valid: {violations:?}\nbefore:\n{}after:\n{}",
            before.render(),
            optimized.render()
        );
    }
    optimized
}

fn optimize_inner(db: &Database, plan: Query) -> Query {
    let plan = map_children(db, plan);
    let plan = match plan {
        Query::Filter { input, pred } => match *input {
            // merge into the scan so the executor's vectorized path can
            // evaluate the predicate over IMC column vectors (§5.2.1)
            Query::Scan { table, filter } => {
                let merged = match filter {
                    None => pred,
                    Some(f) => Expr::And(Box::new(f), Box::new(pred)),
                };
                Query::Scan { table, filter: Some(merged) }
            }
            other => try_pushdown(db, other, pred),
        },
        other => other,
    };
    let plan = if db.dead_path_pruning() { prune_dead_scan(db, plan) } else { plan };
    // runs after pruning so dead-path proofs still see the JSON operators
    substitute_imc_vcs(db, plan)
}

/// The pipeline-selection rewrite feeding the vectorized executor
/// (§5.2.1): in expressions evaluated directly over a scan — the scan's
/// own filter, a projection over the scan, a group-by's keys and
/// aggregate arguments — any sub-expression that is *structurally
/// identical* (by `Debug` rendering, the same equality the pushdown
/// dedupe uses) to a virtual column's defining expression, where that
/// virtual column has a **fresh IMC vector** materialized, is replaced by
/// a direct column reference. `scan_row` already emits every virtual
/// column, so the rewrite never changes results; what it buys is that
/// the expression becomes kernel-compilable (`Expr::compile_predicate` /
/// `Expr::compile_value` only lower column references), letting the
/// executor run the operator columnar over the vectors.
///
/// Translation-valid by construction: the scan schema types virtual
/// columns by inferring their defining expressions, so `Col(vc)` has
/// exactly the inferred type of the sub-expression it replaces; and
/// `Col` never matches a defining expression, so the rewrite is
/// idempotent.
fn substitute_imc_vcs(db: &Database, plan: Query) -> Query {
    use std::collections::HashMap;
    let subs = |table: &str| -> Option<HashMap<String, usize>> {
        let t = db.table(table)?;
        let width = t.schema.width();
        let map: HashMap<String, usize> = t
            .virtual_columns
            .iter()
            .enumerate()
            .filter(|(vi, _)| {
                t.imc.vectors.get(&(width + vi)).map(|v| v.len() == t.rows.len()).unwrap_or(false)
            })
            .map(|(vi, vc)| (format!("{:?}", vc.expr), width + vi))
            .collect();
        (!map.is_empty()).then_some(map)
    };
    match plan {
        Query::Scan { table, filter: Some(pred) } => {
            let pred = match subs(&table) {
                Some(m) => substitute_expr(pred, &m),
                None => pred,
            };
            Query::Scan { table, filter: Some(pred) }
        }
        Query::Project { input, exprs } => match (subs_for_scan(&input, &subs), exprs) {
            (Some(m), exprs) => Query::Project {
                input,
                exprs: exprs.into_iter().map(|(n, e)| (n, substitute_expr(e, &m))).collect(),
            },
            (None, exprs) => Query::Project { input, exprs },
        },
        Query::GroupBy { input, keys, aggs } => match subs_for_scan(&input, &subs) {
            Some(m) => Query::GroupBy {
                input,
                keys: keys.into_iter().map(|(n, e)| (n, substitute_expr(e, &m))).collect(),
                aggs: aggs
                    .into_iter()
                    .map(|mut a| {
                        a.arg = a.arg.map(|e| substitute_expr(e, &m));
                        a
                    })
                    .collect(),
            },
            None => Query::GroupBy { input, keys, aggs },
        },
        other => other,
    }
}

/// Substitutions for expressions that run directly over a scan's rows
/// (the child has already been optimized, so a merged `Filter` is a
/// `Scan` by now).
fn subs_for_scan<F>(input: &Query, subs: &F) -> Option<std::collections::HashMap<String, usize>>
where
    F: Fn(&str) -> Option<std::collections::HashMap<String, usize>>,
{
    match input {
        Query::Scan { table, .. } => subs(table),
        _ => None,
    }
}

/// Bottom-up structural replacement of defining expressions by their
/// virtual-column references.
fn substitute_expr(e: Expr, subs: &std::collections::HashMap<String, usize>) -> Expr {
    if let Some(&idx) = subs.get(&format!("{e:?}")) {
        return Expr::Col(idx);
    }
    match e {
        Expr::Cmp(a, op, b) => {
            Expr::Cmp(Box::new(substitute_expr(*a, subs)), op, Box::new(substitute_expr(*b, subs)))
        }
        Expr::And(a, b) => {
            Expr::And(Box::new(substitute_expr(*a, subs)), Box::new(substitute_expr(*b, subs)))
        }
        Expr::Or(a, b) => {
            Expr::Or(Box::new(substitute_expr(*a, subs)), Box::new(substitute_expr(*b, subs)))
        }
        Expr::Not(a) => Expr::Not(Box::new(substitute_expr(*a, subs))),
        Expr::IsNull(a) => Expr::IsNull(Box::new(substitute_expr(*a, subs))),
        Expr::InList(a, list) => Expr::InList(Box::new(substitute_expr(*a, subs)), list),
        Expr::Like(a, p) => Expr::Like(Box::new(substitute_expr(*a, subs)), p),
        Expr::Arith(a, op, b) => Expr::Arith(
            Box::new(substitute_expr(*a, subs)),
            op,
            Box::new(substitute_expr(*b, subs)),
        ),
        Expr::Fun(f, args) => {
            Expr::Fun(f, args.into_iter().map(|a| substitute_expr(a, subs)).collect())
        }
        leaf => leaf,
    }
}

/// The analyzer handshake: rewrite `Scan{filter}` to a constant-false
/// scan when one of the filter's conjuncts is provably false against the
/// table's DataGuide. Sound only when the guide covers every stored row,
/// which is checked here (the insert pipeline maintains exactly that for
/// `IsJsonWithDataGuide` columns).
fn prune_dead_scan(db: &Database, plan: Query) -> Query {
    let Query::Scan { table, filter: Some(pred) } = plan else { return plan };
    let mut conjuncts = Vec::new();
    split_and(&pred, &mut conjuncts);
    if conjuncts.iter().any(|c| conjunct_provably_false(db, &table, c)) {
        fsdm_obs::counter!(fsdm_obs::catalog::ANALYZE_PRUNE_DEAD_PREDICATES).inc();
        Query::Scan { table, filter: Some(Expr::Lit(Datum::Bool(false))) }
    } else {
        Query::Scan { table, filter: Some(pred) }
    }
}

/// A conjunct that cannot accept any row: `JSON_EXISTS` over a provably
/// empty path, or a comparison where one operand is `JSON_VALUE` of a
/// provably empty path (always SQL NULL, so the comparison is never
/// true under three-valued logic).
fn conjunct_provably_false(db: &Database, table: &str, c: &Expr) -> bool {
    match c {
        Expr::JsonExists { col, path, .. } => json_path_dead(db, table, *col, path.as_ref()),
        Expr::Cmp(a, _, b) => operand_dead(db, table, a) || operand_dead(db, table, b),
        _ => false,
    }
}

fn operand_dead(db: &Database, table: &str, e: &Expr) -> bool {
    match e {
        Expr::JsonValue { col, path, .. } => json_path_dead(db, table, *col, path.as_ref()),
        _ => false,
    }
}

fn json_path_dead(db: &Database, table: &str, col: usize, path: &JsonPath) -> bool {
    let Some(t) = db.table(table) else { return false };
    let Some(spec) = t.schema.columns.get(col) else { return false };
    if spec.constraint != ConstraintMode::IsJsonWithDataGuide
        || !matches!(spec.ty, ColType::Json(_))
    {
        return false;
    }
    // full coverage check: every stored row contributed to the guide
    // (a second guided JSON column would overcount and disable pruning,
    // which errs on the safe side)
    if t.dataguide.doc_count != t.rows.len() as u64 {
        return false;
    }
    fsdm_analyze::path_provably_empty(&t.dataguide, path)
}

fn map_children(db: &Database, plan: Query) -> Query {
    match plan {
        Query::Filter { input, pred } => {
            Query::Filter { input: Box::new(optimize(db, *input)), pred }
        }
        Query::Project { input, exprs } => {
            Query::Project { input: Box::new(optimize(db, *input)), exprs }
        }
        Query::JsonTable { input, json_col, def } => {
            Query::JsonTable { input: Box::new(optimize(db, *input)), json_col, def }
        }
        Query::HashJoin { left, right, left_key, right_key } => Query::HashJoin {
            left: Box::new(optimize(db, *left)),
            right: Box::new(optimize(db, *right)),
            left_key,
            right_key,
        },
        Query::GroupBy { input, keys, aggs } => {
            Query::GroupBy { input: Box::new(optimize(db, *input)), keys, aggs }
        }
        Query::Sort { input, keys } => Query::Sort { input: Box::new(optimize(db, *input)), keys },
        Query::Window { input, name, fun, order } => {
            Query::Window { input: Box::new(optimize(db, *input)), name, fun, order }
        }
        Query::Limit { input, n } => Query::Limit { input: Box::new(optimize(db, *input)), n },
        Query::Sample { input, pct } => {
            Query::Sample { input: Box::new(optimize(db, *input)), pct }
        }
        // expand views so pushdown sees through them
        Query::ViewScan { view } => match db.view(&view) {
            Some(plan) => optimize(db, plan.clone()),
            None => Query::ViewScan { view },
        },
        leaf @ Query::Scan { .. } => leaf,
    }
}

/// `Filter(pred)` over `[Project?] → JsonTable → Scan`: derive a
/// JSON_EXISTS scan pre-filter from the pushable conjuncts.
fn try_pushdown(db: &Database, input: Query, pred: Expr) -> Query {
    // peel an optional pure-column projection, tracking column mapping
    let (proj, jt) = match input {
        Query::Project { input: inner, exprs } => {
            if exprs.iter().all(|(_, e)| matches!(e, Expr::Col(_))) {
                (Some(exprs), *inner)
            } else {
                return Query::Filter {
                    input: Box::new(Query::Project { input: inner, exprs }),
                    pred,
                };
            }
        }
        other => (None, other),
    };
    let Query::JsonTable { input: jt_input, json_col, def } = jt else {
        // not a JSON_TABLE pipeline: restore and bail
        let restored = match proj {
            Some(exprs) => Query::Project { input: Box::new(jt), exprs },
            None => jt,
        };
        return Query::Filter { input: Box::new(restored), pred };
    };
    let Query::Scan { table, filter } = *jt_input else {
        let restored = rebuild(proj, Query::JsonTable { input: jt_input, json_col, def });
        return Query::Filter { input: Box::new(restored), pred };
    };
    let scan_width = db.table(&table).map(|t| t.scan_column_names().len()).unwrap_or(0);
    let mut conjuncts = Vec::new();
    split_and(&pred, &mut conjuncts);
    let col_paths = column_exists_paths(&def);
    let mut exists_exprs: Vec<Expr> = Vec::new();
    // resolve a column reference through the optional projection to a
    // JSON_TABLE column's exists-path parts
    let resolve = |col: usize| -> Option<&(String, String)> {
        let jt_pos = match &proj {
            Some(exprs) => match exprs.get(col) {
                Some((_, Expr::Col(j))) => *j,
                _ => return None,
            },
            None => col,
        };
        if jt_pos < scan_width {
            return None; // predicate on a base column: not a JT pushdown
        }
        col_paths.get(jt_pos - scan_width)?.as_ref()
    };
    for c in &conjuncts {
        match c {
            Expr::Cmp(l, op, r) => {
                let (col, lit, op) = match (&**l, &**r) {
                    (Expr::Col(i), Expr::Lit(d)) => (*i, d, *op),
                    (Expr::Lit(d), Expr::Col(i)) => (*i, d, flip(*op)),
                    _ => continue,
                };
                let Some(parts) = resolve(col) else { continue };
                if let Some(path_text) = exists_path(parts, op, lit) {
                    if let Ok(p) = parse_path(&path_text) {
                        exists_exprs.push(Expr::json_exists(json_col, p));
                    }
                }
            }
            // `col IN (a, b, c)` → one exists probe with an OR-chain filter
            Expr::InList(inner, list) => {
                let Expr::Col(col) = &**inner else { continue };
                let Some((prefix, sub)) = resolve(*col) else { continue };
                let mut terms = Vec::with_capacity(list.len());
                let mut ok = true;
                for d in list {
                    match render_literal(d) {
                        Some(t) => terms.push(format!("@{sub} == {t}")),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok && !terms.is_empty() {
                    let path_text = format!("${prefix}?({})", terms.join(" || "));
                    if let Ok(p) = parse_path(&path_text) {
                        exists_exprs.push(Expr::json_exists(json_col, p));
                    }
                }
            }
            _ => {}
        }
    }
    // dedupe against probes already on the scan filter: the row-level
    // filter is kept above, so a second optimize() pass re-derives the
    // same exists probes — re-ANDing them would break idempotence
    let mut existing = Vec::new();
    if let Some(f) = &filter {
        split_and(f, &mut existing);
    }
    let existing: Vec<String> = existing.iter().map(|e| format!("{e:?}")).collect();
    let mut scan_filter = filter;
    for e in exists_exprs {
        if existing.contains(&format!("{e:?}")) {
            continue;
        }
        scan_filter = Some(match scan_filter {
            None => e,
            Some(f) => Expr::And(Box::new(f), Box::new(e)),
        });
    }
    let rebuilt = rebuild(
        proj,
        Query::JsonTable {
            input: Box::new(Query::Scan { table, filter: scan_filter }),
            json_col,
            def,
        },
    );
    Query::Filter { input: Box::new(rebuilt), pred }
}

fn rebuild(proj: Option<Vec<(String, Expr)>>, inner: Query) -> Query {
    match proj {
        Some(exprs) => Query::Project { input: Box::new(inner), exprs },
        None => inner,
    }
}

fn split_and(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::And(a, b) = e {
        split_and(a, out);
        split_and(b, out);
    } else {
        out.push(e.clone());
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

/// For each JSON_TABLE output column (in `column_names()` order): the
/// (container path text, column sub-path text) to build an exists probe,
/// or `None` when the column is not a simple value column.
fn column_exists_paths(def: &JsonTableDef) -> Vec<Option<(String, String)>> {
    let mut out = Vec::new();
    let root = steps_text(&def.row_path.steps);
    collect_paths(&def.columns, &def.nested, &root, &mut out);
    out
}

fn collect_paths(
    cols: &[ColumnDef],
    nested: &[NestedDef],
    prefix: &str,
    out: &mut Vec<Option<(String, String)>>,
) {
    for c in cols {
        if c.kind == ColKind::Value {
            match simple_sub_path(&c.path.steps) {
                Some(sub) => out.push(Some((prefix.to_string(), sub))),
                None => out.push(None),
            }
        } else {
            out.push(None);
        }
    }
    for n in nested {
        let np = format!("{prefix}{}", steps_text(&n.path.steps));
        collect_paths(&n.columns, &n.nested, &np, out);
    }
}

/// Render steps as path text (fields and `[*]` only; anything else makes
/// the column non-pushable).
fn steps_text(steps: &[Step]) -> String {
    let mut s = String::new();
    for step in steps {
        match step {
            Step::Field { name, .. } => s.push_str(&fsdm_sqljson::path::path_step_text(name)),
            Step::ArrayWildcard => s.push_str("[*]"),
            Step::Array(sels) => {
                if let [ArraySel::Index(IndexExpr::At(i))] = sels.as_slice() {
                    s.push_str(&format!("[{i}]"));
                } else {
                    s.push_str("[*]");
                }
            }
            _ => s.push_str("[*]"), // conservative
        }
    }
    s
}

fn simple_sub_path(steps: &[Step]) -> Option<String> {
    let mut s = String::new();
    for step in steps {
        match step {
            Step::Field { name, .. } => s.push_str(&fsdm_sqljson::path::path_step_text(name)),
            _ => return None,
        }
    }
    Some(s)
}

/// Render a datum as a path literal (`None` when it cannot appear safely
/// inside path text).
fn render_literal(lit: &Datum) -> Option<String> {
    match lit {
        Datum::Num(n) => Some(n.to_literal()),
        Datum::Str(s) if !s.contains(['"', '\'', '\\']) => Some(format!("\"{s}\"")),
        Datum::Bool(b) => Some(b.to_string()),
        _ => None,
    }
}

/// `$<container>?(@<sub> <op> <literal>)` when the literal is renderable.
fn exists_path((prefix, sub): &(String, String), op: CmpOp, lit: &Datum) -> Option<String> {
    let op_text = match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    };
    let lit_text = render_literal(lit)?;
    // a column directly at the row node (`sub` empty) probes `@` itself
    Some(format!("${prefix}?(@{sub} {op_text} {lit_text})"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_sqljson::json_table::ColumnDef as CD;
    use fsdm_sqljson::SqlType;

    fn sample_def() -> JsonTableDef {
        let p = |s: &str| parse_path(s).unwrap();
        JsonTableDef {
            row_path: p("$.purchaseOrder"),
            columns: vec![CD::value("reference", SqlType::Varchar2(32), p("$.reference"))],
            nested: vec![NestedDef {
                path: p("$.items[*]"),
                columns: vec![
                    CD::value("partno", SqlType::Varchar2(16), p("$.partno")),
                    CD::value("quantity", SqlType::Number, p("$.quantity")),
                ],
                nested: vec![],
            }],
        }
    }

    #[test]
    fn derives_exists_paths_per_column() {
        let paths = column_exists_paths(&sample_def());
        assert_eq!(paths.len(), 3);
        assert_eq!(
            paths[0].as_ref().unwrap(),
            &(".purchaseOrder".to_string(), ".reference".to_string())
        );
        assert_eq!(
            paths[1].as_ref().unwrap(),
            &(".purchaseOrder.items[*]".to_string(), ".partno".to_string())
        );
    }

    #[test]
    fn exists_path_rendering() {
        let p = (".purchaseOrder.items[*]".to_string(), ".partno".to_string());
        assert_eq!(
            exists_path(&p, CmpOp::Eq, &Datum::from("P100")).unwrap(),
            "$.purchaseOrder.items[*]?(@.partno == \"P100\")"
        );
        assert_eq!(
            exists_path(&p, CmpOp::Gt, &Datum::from(5i64)).unwrap(),
            "$.purchaseOrder.items[*]?(@.partno > 5)"
        );
        assert!(exists_path(&p, CmpOp::Eq, &Datum::Null).is_none());
        assert!(exists_path(&p, CmpOp::Eq, &Datum::from("a\"b")).is_none());
    }

    fn po_db() -> Database {
        use crate::jsonaccess::JsonStorage;
        use crate::schema::{ColType, ColumnSpec, ConstraintMode, TableSchema};
        use crate::table::Table;
        let mut db = Database::new();
        db.add_table(Table::new(TableSchema::new(
            "po",
            vec![
                ColumnSpec::new("did", ColType::Number),
                ColumnSpec::json("jdoc", JsonStorage::Text, ConstraintMode::IsJson),
            ],
        )));
        db
    }

    #[test]
    fn pushdown_adds_scan_prefilter_and_keeps_filter() {
        let def = sample_def();
        let plan = Query::Filter {
            input: Box::new(Query::JsonTable {
                input: Box::new(Query::scan("po")),
                json_col: 1,
                def,
            }),
            pred: Expr::cmp(Expr::Col(3), CmpOp::Eq, Expr::Lit(Datum::from("P100"))),
        };
        let opt = optimize(&po_db(), plan);
        match &opt {
            Query::Filter { input, .. } => match &**input {
                Query::JsonTable { input, .. } => match &**input {
                    Query::Scan { filter: Some(f), .. } => {
                        let s = format!("{f:?}");
                        assert!(s.contains("JSON_EXISTS"), "{s}");
                        assert!(s.contains("partno"), "{s}");
                    }
                    other => panic!("expected filtered scan, got {other:?}"),
                },
                other => panic!("expected JsonTable, got {other:?}"),
            },
            other => panic!("expected Filter kept on top, got {other:?}"),
        }
    }

    #[test]
    fn optimize_is_idempotent_on_pushdown_plans() {
        let db = po_db();
        let plan = Query::Filter {
            input: Box::new(Query::JsonTable {
                input: Box::new(Query::scan("po")),
                json_col: 1,
                def: sample_def(),
            }),
            pred: Expr::And(
                Box::new(Expr::cmp(Expr::Col(3), CmpOp::Eq, Expr::Lit(Datum::from("P100")))),
                Box::new(Expr::InList(
                    Box::new(Expr::Col(4)),
                    vec![Datum::from(1i64), Datum::from(2i64)],
                )),
            ),
        };
        let once = optimize(&db, plan);
        let twice = optimize(&db, once.clone());
        assert_eq!(
            format!("{once:?}"),
            format!("{twice:?}"),
            "a second optimize pass re-fired a rewrite:\n{}vs\n{}",
            once.render(),
            twice.render()
        );
        // the derived probes are still there, exactly once each
        let text = format!("{twice:?}");
        assert_eq!(text.matches("JSON_EXISTS").count(), 2, "{text}");
    }

    fn guided_db() -> Database {
        use crate::jsonaccess::JsonStorage;
        use crate::schema::{ColType, ColumnSpec, TableSchema};
        use crate::table::{InsertValue, Table};
        let mut t = Table::new(TableSchema::new(
            "po",
            vec![
                ColumnSpec::new("did", ColType::Number),
                ColumnSpec::json("jdoc", JsonStorage::Oson, ConstraintMode::IsJsonWithDataGuide),
            ],
        ));
        for i in 0..3i64 {
            t.insert(vec![i.into(), InsertValue::Json(format!(r#"{{"price":{i}}}"#))]).unwrap();
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    #[test]
    fn dead_json_exists_prunes_only_when_opted_in() {
        let dead =
            || Query::scan("po").filter(Expr::json_exists(1, parse_path("$.persno").unwrap()));
        let mut db = guided_db();
        // off by default: the filter merges into the scan but stays live
        let plan = optimize(&db, dead());
        match &plan {
            Query::Scan { filter: Some(f), .. } => {
                assert!(format!("{f:?}").contains("JSON_EXISTS"), "{f:?}");
            }
            other => panic!("expected merged scan, got {other:?}"),
        }
        db.set_dead_path_pruning(true);
        let plan = optimize(&db, dead());
        assert!(
            matches!(&plan, Query::Scan { filter: Some(Expr::Lit(Datum::Bool(false))), .. }),
            "{plan:?}"
        );
        // the rewrite is visible in EXPLAIN renderings, and execution
        // still returns the (empty) result the live filter would
        assert!(plan.render().contains("filter=false"), "{}", plan.render());
        assert!(db.execute(&dead()).unwrap().rows.is_empty());
    }

    #[test]
    fn dead_json_value_comparison_prunes() {
        let mut db = guided_db();
        db.set_dead_path_pruning(true);
        let dead = Query::scan("po").filter(Expr::cmp(
            Expr::json_value(1, parse_path("$.persno").unwrap(), SqlType::Number),
            CmpOp::Eq,
            Expr::Lit(Datum::from(7i64)),
        ));
        let plan = optimize(&db, dead);
        assert!(
            matches!(&plan, Query::Scan { filter: Some(Expr::Lit(Datum::Bool(false))), .. }),
            "{plan:?}"
        );
    }

    #[test]
    fn live_paths_and_unguided_tables_never_prune() {
        let mut db = guided_db();
        db.set_dead_path_pruning(true);
        // live path: the guide has seen `price`
        let live = Query::scan("po").filter(Expr::json_exists(1, parse_path("$.price").unwrap()));
        match optimize(&db, live) {
            Query::Scan { filter: Some(f), .. } => {
                assert!(format!("{f:?}").contains("JSON_EXISTS"), "{f:?}");
            }
            other => panic!("{other:?}"),
        }
        // unguided table (plain IS JSON): no proof available, no rewrite
        let mut db = po_db();
        db.set_dead_path_pruning(true);
        let dead = Query::scan("po").filter(Expr::json_exists(1, parse_path("$.zz").unwrap()));
        match optimize(&db, dead) {
            Query::Scan { filter: Some(f), .. } => {
                assert!(format!("{f:?}").contains("JSON_EXISTS"), "{f:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_pushable_predicates_left_alone() {
        let def = sample_def();
        let plan = Query::Filter {
            input: Box::new(Query::JsonTable {
                input: Box::new(Query::scan("po")),
                json_col: 1,
                def,
            }),
            pred: Expr::IsNull(Box::new(Expr::Col(3))),
        };
        let opt = optimize(&po_db(), plan);
        match &opt {
            Query::Filter { input, .. } => match &**input {
                Query::JsonTable { input, .. } => {
                    assert!(matches!(&**input, Query::Scan { filter: None, .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}

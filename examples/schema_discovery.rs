//! Schema discovery on a heterogeneous collection: watch the DataGuide
//! evolve (the §3.2.1 walkthrough), compute transient guides with the SQL
//! aggregate, and customize the generated view with annotations.
//!
//! ```sh
//! cargo run --release --example schema_discovery
//! ```

use std::collections::HashMap;

use fsdm::dataguide::views::{create_view_on_path, ColumnOverride};
use fsdm::sqljson::SqlType;
use fsdm::{CollectionOptions, FsdmDatabase};

fn main() {
    let mut db = FsdmDatabase::new();
    db.create_collection("events", CollectionOptions::default()).unwrap();

    // heterogeneous writers: three apps logging different shapes into the
    // same collection, types drifting over time
    db.put("events", r#"{"kind":"click","ts":"2015-01-01","target":{"id":17,"area":"nav"}}"#)
        .unwrap();
    db.put("events", r#"{"kind":"click","ts":"2015-01-02","target":{"id":"a-9","area":"footer"}}"#)
        .unwrap();
    db.put(
        "events",
        r#"{"kind":"purchase","ts":"2015-01-02","cart":{"total":99.95,
            "items":[{"sku":"S1","qty":1},{"sku":"S2","qty":3}]}}"#,
    )
    .unwrap();
    db.put("events", r#"{"kind":"error","ts":"2015-01-03","message":"timeout","retries":4}"#)
        .unwrap();

    println!("== the merged soft schema ==");
    for row in db.dataguide("events").unwrap().rows() {
        println!("{:<28} {:<18} freq={}/4", row.path, row.type_str, row.doc_count);
    }
    println!("\nnote: $.target.id merged number+string → generalized to string\n");

    // transient DataGuides per group, straight from SQL (§3.4, Table 9 Q2)
    let r = db
        .sql("select json_dataguideagg(jdoc) from events group by json_value(jdoc, '$.kind')")
        .unwrap();
    println!("== one transient DataGuide per event kind ==");
    for row in &r.rows {
        let guide = fsdm::json::parse(&row[0].to_text()).unwrap();
        println!("kind {}: {} paths", row[1], guide.as_array().unwrap().len());
    }

    // user-annotated view generation (§3.2.2: "users can annotate the
    // computed DataGuide … and then call CreateViewOnPath()")
    let mut overrides = HashMap::new();
    overrides.insert(
        "$.ts".to_string(),
        ColumnOverride {
            rename: Some("EVENT_TIME".into()),
            retype: Some(SqlType::Varchar2(32)),
            exclude: false,
        },
    );
    overrides
        .insert("$.message".to_string(), ColumnOverride { exclude: true, ..Default::default() });
    let guide = db.dataguide("events").unwrap().clone();
    let view = create_view_on_path(&guide, "$", "jdoc", "EVENTS_RV", 0, &overrides).unwrap();
    println!("\n== customized view ==\n{}", view.sql);
}

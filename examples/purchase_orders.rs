//! The §6.3 storage-method comparison in miniature: the same OLAP query
//! answered from JSON text, BSON, OSON and relational shredding, with
//! identical results and visibly different costs.
//!
//! ```sh
//! cargo run --release --example purchase_orders
//! ```

use std::time::Instant;

use fsdm::sqljson::Datum;
use fsdm_bench::setup::{bind_datum, olap_db, olap_queries, storage_size, StorageMethod};

fn main() {
    let n = 5_000;
    println!("loading {n} purchaseOrder documents into four storage methods…\n");
    let queries = olap_queries(n);

    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12}",
        "query",
        StorageMethod::Json.label(),
        StorageMethod::Bson.label(),
        StorageMethod::Oson.label(),
        StorageMethod::Rel.label()
    );
    let mut sizes = Vec::new();
    let mut table: Vec<Vec<String>> = vec![Vec::new(); queries.len()];
    for method in StorageMethod::ALL {
        let mut session = olap_db(method, n);
        sizes.push((method, storage_size(&session, method)));
        for (qi, q) in queries.iter().enumerate() {
            let binds: Vec<Datum> = q.binds.iter().map(|b| bind_datum(b)).collect();
            // warm once, then measure
            session.execute_with(&q.sql, &binds).unwrap();
            let t = Instant::now();
            let r = session.execute_with(&q.sql, &binds).unwrap();
            table[qi].push(format!("{:.1}ms/{}r", t.elapsed().as_secs_f64() * 1e3, r.rows.len()));
        }
    }
    for (qi, cols) in table.iter().enumerate() {
        print!("Q{:<5}", qi + 1);
        for c in cols {
            print!(" {c:>12}");
        }
        println!();
    }

    println!("\nstorage size (Figure 4):");
    for (m, bytes) in sizes {
        println!("  {:<5} {:>12} bytes", m.label(), bytes);
    }
    println!("\n(Every cell reports time/rows; row counts are identical across methods.)");
}

//! NOBENCH analytics through the three execution modes of §5.2/§6.4:
//! TEXT (parse per query), OSON-IMC (binary in memory, text on disk), and
//! VC-IMC (columnar virtual columns).
//!
//! ```sh
//! cargo run --release --example nobench_analytics
//! ```

use std::time::Instant;

use fsdm_bench::setup::{add_nobench_vcs, nobench_db};
use fsdm_workloads::nobench::query_sql;

fn main() {
    let n = 10_000;
    println!("loading {n} NOBENCH documents (text storage)…");
    let mut session = nobench_db(n);
    let q6 = query_sql(6, n);
    let q10 = query_sql(10, n);

    let time = |s: &mut fsdm::sql::Session, sql: &str| -> (f64, usize) {
        s.execute(sql).unwrap(); // warm
        let t = Instant::now();
        let r = s.execute(sql).unwrap();
        (t.elapsed().as_secs_f64() * 1e3, r.rows.len())
    };

    let (t6_text, n6) = time(&mut session, &q6);
    let (t10_text, n10) = time(&mut session, &q10);
    println!(
        "\nTEXT-MODE       Q6 {t6_text:8.1} ms ({n6} rows)   Q10 {t10_text:8.1} ms ({n10} groups)"
    );

    session.db.table_mut("nobench").unwrap().populate_oson_imc().unwrap();
    let (t6_oson, _) = time(&mut session, &q6);
    let (t10_oson, _) = time(&mut session, &q10);
    println!("OSON-IMC-MODE   Q6 {t6_oson:8.1} ms             Q10 {t10_oson:8.1} ms");

    add_nobench_vcs(&mut session);
    session
        .db
        .table_mut("nobench")
        .unwrap()
        .populate_vc_imc(&["nb$str1", "nb$num", "nb$dyn1"])
        .unwrap();
    let q6_vc = format!(
        "select \"nb$num\" from nobench where \"nb$num\" between {} and {}",
        n / 2,
        n / 2 + n / 10
    );
    let (t6_vc, n6vc) = time(&mut session, &q6_vc);
    assert_eq!(n6, n6vc, "VC-IMC must return identical results");
    println!("VC-IMC-MODE     Q6 {t6_vc:8.1} ms");

    println!(
        "\nspeedups: OSON-IMC {:.1}x over TEXT; VC-IMC {:.1}x over OSON-IMC",
        t6_text / t6_oson,
        t6_oson / t6_vc
    );
}

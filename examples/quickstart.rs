//! Quickstart: "write without schema, read with schema".
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fsdm::{CollectionOptions, FsdmDatabase};

fn main() {
    let mut db = FsdmDatabase::new();

    // 1. Create a JSON collection — no schema declared, ever.
    db.create_collection("po", CollectionOptions::default()).unwrap();

    // 2. Write documents of evolving shape.
    db.put(
        "po",
        r#"{"purchaseOrder":{"id":1,"podate":"2014-09-08","items":[
            {"name":"phone","price":100,"quantity":2},
            {"name":"ipad","price":350.86,"quantity":3}]}}"#,
    )
    .unwrap();
    db.put(
        "po",
        r#"{"purchaseOrder":{"id":2,"podate":"2015-03-04","items":[
            {"name":"table","price":52.78,"quantity":2},
            {"name":"chair","price":35.24,"quantity":4}]}}"#,
    )
    .unwrap();
    // a third document grows the schema deeper (parts) and wider (foreign_id)
    db.put(
        "po",
        r#"{"purchaseOrder":{"id":3,"podate":"2015-06-03","foreign_id":"CDEG35","items":[
            {"name":"TV","price":345.55,"quantity":1,
             "parts":[{"partName":"remoteCon","partQuantity":"1"}]}]}}"#,
    )
    .unwrap();

    // 3. The DataGuide tracked every path automatically.
    println!("== $DG rows (the soft schema) ==");
    for row in db.dataguide("po").unwrap().rows() {
        println!("{:<55} {}", row.path, row.type_str);
    }

    // 4. Project the virtual relational schema and query it with SQL.
    let schema = db.infer_relational_schema("po").unwrap();
    println!("\n== generated view SQL ==\n{}\n", schema.view_sql);

    let r = db
        .sql("select \"jdoc$name\", \"jdoc$price\" from po_dmdv where \"jdoc$price\" > 100")
        .unwrap();
    println!("== items over 100 ==");
    for row in &r.rows {
        println!("{:<10} {}", row[0], row[1]);
    }

    // 5. Ad-hoc path queries still work on the raw documents.
    let hits = db.find("po", "$.purchaseOrder.items[*]?(@.quantity >= 3).name").unwrap();
    println!("\n== bulk items (path query) ==");
    for (id, names) in hits {
        println!("doc {id}: {names:?}");
    }
}

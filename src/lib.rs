//! `fsdm`: umbrella crate re-exporting the whole FSDM stack.
//!
//! This workspace reproduces "Closing the Functional and Performance Gap
//! between SQL and NoSQL" (SIGMOD 2016): the OSON binary JSON format, the
//! JSON DataGuide dynamic soft schema, SQL/JSON query processing, and the
//! in-memory store integration. Start with [`FsdmDatabase`].

pub use fsdm_core::*;

/// Semantic static analysis of SQL/JSON queries (FA001–FA007).
pub use fsdm_analyze as analyze;
/// BSON baseline codec.
pub use fsdm_bson as bson;
/// The JSON DataGuide.
pub use fsdm_dataguide as dataguide;
/// Catalog-checked failpoint registry for deterministic fault injection.
pub use fsdm_fault as fault;
/// The JSON search index.
pub use fsdm_index as index;
/// The JSON substrate: value model, parser, serializer, OraNum.
pub use fsdm_json as json;
/// Zero-dependency metrics + query profiling.
pub use fsdm_obs as obs;
/// The OSON binary format.
pub use fsdm_oson as oson;
/// Plan-level type inference + optimizer translation validation
/// (PK001–PK006).
pub use fsdm_planck as planck;
/// The SQL front end.
pub use fsdm_sql as sql;
/// SQL/JSON path language and operators.
pub use fsdm_sqljson as sqljson;
/// The relational engine.
pub use fsdm_store as store;
/// Workload generators.
pub use fsdm_workloads as workloads;

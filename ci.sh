#!/usr/bin/env bash
# Offline-safe CI gate for the fsdm workspace.
#
# The build environment has no crates.io access: every dependency is an
# in-workspace path crate (including the rand/proptest/criterion
# stand-ins), so nothing here touches the network.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release

echo "== tests (tier-1: root package, serial executor) =="
FSDM_THREADS=1 cargo test -q

echo "== tests (tier-1: root package, 4-way parallel executor) =="
FSDM_THREADS=4 cargo test -q

echo "== tests (full workspace, serial executor) =="
FSDM_THREADS=1 cargo test --workspace -q

echo "== tests (full workspace, 4-way parallel executor) =="
FSDM_THREADS=4 cargo test --workspace -q

echo "== fsdm-planck (workload plan typecheck, zero-error budget) =="
cargo run --release -p fsdm-bench --bin fsdm-planck -- --workload both --scale 1000 --json \
  > planck-report.json \
  || { echo "fsdm-planck found error-severity findings:"; cat planck-report.json; exit 1; }
grep -q '"errors": 0' planck-report.json

echo "== bench concurrency smoke (4-thread wall <= 1.1x 1-thread) =="
# --json persists the run in the stable fsdm-bench-concurrency-v1 schema
# so CI revisions accumulate into a machine-readable perf trajectory
cargo run --release -p fsdm-bench --bin bench -- concurrency --scale small --smoke \
  --json BENCH_concurrency.json

echo "== bench imc smoke (columnar Q1-3 wall <= row-path wall) =="
# --json persists the run in the stable fsdm-bench-imc-v1 schema so CI
# revisions accumulate the row-vs-columnar trajectory alongside the
# concurrency one
cargo run --release -p fsdm-bench --bin bench -- imc --scale small --smoke \
  --json BENCH_imc.json

echo "== bench trace-overhead smoke (disabled tracing <= 2% of Q1-3 wall) =="
cargo run --release -p fsdm-bench --bin bench -- trace-overhead --scale 2000 --smoke

echo "== bench chaos smoke (seeded fault schedules, zero violations, disarmed <= 2%) =="
# --json persists the run in the stable fsdm-bench-chaos-v1 schema; the
# command itself exits non-zero on any contract violation or if the
# disarmed governance overhead estimate exceeds the 2% budget
cargo run --release -p fsdm-bench --bin bench -- chaos --smoke --json BENCH_chaos.json
grep -q '"violation":0' BENCH_chaos.json

echo "== repro chaos report (writes repro-chaos.json, re-parses) =="
cargo run --release -p fsdm-bench --bin repro -- table10 --scale 120 --no-metrics \
  --chaos-report repro-chaos.json
grep -q '"violation":0' repro-chaos.json

echo "== repro trace smoke (span trees validate, exports re-parse) =="
FSDM_THREADS=4 cargo run --release -p fsdm-bench --bin repro -- \
  --trace /tmp/fsdm-trace.json --slow-log /tmp/fsdm-slow.json --scale 300

echo "== repro typecheck report (writes repro-planck.json, re-parses) =="
cargo run --release -p fsdm-bench --bin repro -- table10 --scale 120 --no-metrics \
  --typecheck-report repro-planck.json
grep -q '"errors": 0' repro-planck.json

echo "== repro sentinel report (writes repro-sentinel.json, re-parses) =="
cargo run --release -p fsdm-bench --bin repro -- table10 --scale 120 --no-metrics \
  --sentinel-report repro-sentinel.json
grep -q '"errors": 0' repro-sentinel.json

echo "== fsdm-tidy (repo-native static analysis) =="
cargo run --release -p fsdm-tidy

echo "== fsdm-analyze (workload semantic lint, zero-error budget) =="
cargo run --release -p fsdm-bench --bin fsdm-analyze -- --workload both --scale 1000 --json \
  > analyze-report.json \
  || { echo "fsdm-analyze found error-severity findings:"; cat analyze-report.json; exit 1; }
grep -q '"errors": 0' analyze-report.json

echo "== fsdm-sentinel (concurrency static analysis, zero-error budget) =="
cargo run --release -p fsdm-sentinel --bin fsdm-sentinel -- --json \
  > sentinel-report.json \
  || { echo "fsdm-sentinel found concurrency findings:"; cat sentinel-report.json; exit 1; }
grep -q '"errors": 0' sentinel-report.json

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
